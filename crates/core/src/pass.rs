//! The full Block Reorganizer pipeline (Figure 4).
//!
//! ```text
//! precalc & classify (GPU kernel)
//!   → B-Splitting preprocessing (host CPU)
//!     → expansion: split dominators + normal blocks + gathered low
//!       performers, all writing row-relocated Ĉ
//!       → merge: Gustavson dense accumulator, B-Limited long rows
//! ```
//!
//! All preprocessing overhead is charged to the run, matching the paper's
//! measurement convention (Section V).

use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::profiler::KernelProfile;
use br_gpu_sim::sim::GpuSimulator;
use br_sparse::{CsrMatrix, Result, Scalar};
use br_spgemm::context::ProblemContext;
use br_spgemm::pipeline::SpgemmRun;
use serde::{Deserialize, Serialize};

use crate::config::ReorganizerConfig;
use crate::plan::{PlanMode, ReorgPlan};

/// Summary statistics of one reorganized run (the Section IV-E walkthrough
/// numbers: dominator pairs, low performers, limited rows, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReorgStats {
    /// Pairs classified as dominators.
    pub dominators: usize,
    /// Pairs classified as low performers.
    pub low_performers: usize,
    /// Pairs classified as normal.
    pub normals: usize,
    /// Expansion blocks after splitting + gathering.
    pub expansion_blocks: usize,
    /// Combined (gathered) blocks emitted.
    pub gathered_blocks: usize,
    /// Rows receiving B-Limiting during the merge.
    pub limited_rows: usize,
    /// Largest splitting factor applied.
    pub max_split_factor: u32,
}

/// Outcome of a Block Reorganizer multiplication.
#[derive(Debug, Clone)]
pub struct ReorganizerRun<T> {
    /// The numeric result (canonical CSR).
    pub result: CsrMatrix<T>,
    /// Kernel profiles: precalc, expansion, merge.
    pub profiles: Vec<KernelProfile>,
    /// Host-side preprocessing (B-Splitting) time in ms.
    pub preprocess_ms: f64,
    /// Total time (kernels + preprocessing) in ms.
    pub total_ms: f64,
    /// FLOP count.
    pub flops: u64,
    /// Classification / reorganization statistics.
    pub stats: ReorgStats,
}

impl<T: Clone> ReorganizerRun<T> {
    /// Achieved GFLOPS — the Figure 9 metric.
    pub fn gflops(&self) -> f64 {
        if self.total_ms <= 0.0 {
            0.0
        } else {
            self.flops as f64 / (self.total_ms * 1e-3) / 1e9
        }
    }

    /// Time of profiles whose name contains `tag`, in ms.
    pub fn phase_ms(&self, tag: &str) -> f64 {
        self.profiles
            .iter()
            .filter(|p| p.name.contains(tag))
            .map(|p| p.time_ms)
            .sum()
    }

    /// Repackages as a generic [`SpgemmRun`] for uniform benchmarking
    /// against the baseline methods.
    pub fn to_spgemm_run(&self) -> SpgemmRun<T> {
        SpgemmRun {
            method: "Block-Reorganizer".to_string(),
            result: self.result.clone(),
            profiles: self.profiles.clone(),
            preprocess_ms: self.preprocess_ms,
            total_ms: self.total_ms,
            flops: self.flops,
        }
    }
}

/// The Block Reorganizer optimization pass.
#[derive(Debug, Clone, Default)]
pub struct BlockReorganizer {
    config: ReorganizerConfig,
}

impl BlockReorganizer {
    /// Creates the pass with the given configuration.
    pub fn new(config: ReorganizerConfig) -> Self {
        BlockReorganizer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ReorganizerConfig {
        &self.config
    }

    /// Multiplies `C = A · B` on the given device.
    pub fn multiply<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &CsrMatrix<T>,
        device: &DeviceConfig,
    ) -> Result<ReorganizerRun<T>> {
        let ctx = ProblemContext::new(a, b)?;
        self.multiply_ctx(&ctx, device)
    }

    /// Multiplies using a precomputed [`ProblemContext`] (the benchmark
    /// harness shares one context across all methods).
    ///
    /// Equivalent to building a fresh [`ReorgPlan`] and executing it
    /// [`PlanMode::Cold`] — all preprocessing is charged to this run.
    pub fn multiply_ctx<T: Scalar>(
        &self,
        ctx: &ProblemContext<T>,
        device: &DeviceConfig,
    ) -> Result<ReorganizerRun<T>> {
        ReorgPlan::build(ctx, &self.config, device).execute(ctx, device, PlanMode::Cold)
    }

    /// Builds the reusable preprocessing artifact for this configuration —
    /// the analysis half of [`BlockReorganizer::multiply_ctx`].
    pub fn plan<T: Scalar>(&self, ctx: &ProblemContext<T>, device: &DeviceConfig) -> ReorgPlan {
        ReorgPlan::build(ctx, &self.config, device)
    }

    /// Multiplies using a previously built (e.g. cached) plan: only the
    /// expansion and merge kernels run; precalculation and the host-side
    /// B-Splitting cost are *not* charged, because the plan already paid
    /// them. Fails if `plan` was built for a different sparsity structure.
    pub fn multiply_with_plan<T: Scalar>(
        &self,
        ctx: &ProblemContext<T>,
        plan: &ReorgPlan,
        device: &DeviceConfig,
    ) -> Result<ReorganizerRun<T>> {
        plan.execute(ctx, device, PlanMode::Cached)
    }

    /// [`BlockReorganizer::multiply_with_plan`] against a caller-owned
    /// simulator — used by `br-service` workers, which keep one
    /// [`GpuSimulator`] each.
    pub fn multiply_with_plan_on<T: Scalar>(
        &self,
        sim: &GpuSimulator,
        ctx: &ProblemContext<T>,
        plan: &ReorgPlan,
    ) -> Result<ReorganizerRun<T>> {
        plan.execute_on(sim, ctx, PlanMode::Cached)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::chung_lu::{chung_lu, ChungLuConfig};
    use br_datasets::registry::{RealWorldRegistry, ScaleFactor};
    use br_sparse::ops::spgemm_gustavson;

    fn skewed() -> CsrMatrix<f64> {
        chung_lu(ChungLuConfig {
            gamma: 2.0,
            ..ChungLuConfig::social(3000, 21_000, 77)
        })
        .to_csr()
    }

    #[test]
    fn result_matches_oracle() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let run = BlockReorganizer::default().multiply(&a, &a, &dev).unwrap();
        let oracle = spgemm_gustavson(&a, &a).unwrap();
        assert!(run.result.approx_eq(&oracle, 1e-9));
    }

    #[test]
    fn emits_precalc_expansion_merge_profiles() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let run = BlockReorganizer::default().multiply(&a, &a, &dev).unwrap();
        let names: Vec<_> = run.profiles.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names.len(), 3);
        assert!(names[0].contains("precalc"));
        assert!(names[1].contains("expansion"));
        assert!(names[2].contains("merge"));
        assert!(run.preprocess_ms > 0.0, "splitting has host cost");
    }

    #[test]
    fn stats_reflect_classification_and_plans() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let run = BlockReorganizer::default().multiply(&a, &a, &dev).unwrap();
        let s = run.stats;
        assert!(s.dominators > 0);
        assert!(s.low_performers > s.dominators);
        assert!(s.gathered_blocks > 0);
        assert!(
            s.gathered_blocks < s.low_performers,
            "gathering must shrink the block count"
        );
        assert!(s.limited_rows > 0);
        assert!(s.max_split_factor >= 32, "auto splitting spreads over SMs");
        // splitting adds blocks; gathering removes more than it adds on a
        // hub-heavy graph, but the total must stay consistent
        assert!(s.expansion_blocks > 0);
    }

    #[test]
    fn beats_plain_outer_product_on_skewed_data() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let reorg = BlockReorganizer::default()
            .multiply_ctx(&ctx, &dev)
            .unwrap();
        let outer =
            br_spgemm::pipeline::run_method(&ctx, br_spgemm::SpgemmMethod::OuterProduct, &dev)
                .unwrap();
        assert!(
            reorg.total_ms < outer.total_ms,
            "reorganizer {} ms vs outer {} ms",
            reorg.total_ms,
            outer.total_ms
        );
    }

    #[test]
    fn improves_expansion_lbi_on_skewed_data() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let reorg = BlockReorganizer::default()
            .multiply_ctx(&ctx, &dev)
            .unwrap();
        let outer =
            br_spgemm::pipeline::run_method(&ctx, br_spgemm::SpgemmMethod::OuterProduct, &dev)
                .unwrap();
        let lbi_outer = outer.profiles[0].lbi();
        let lbi_reorg = reorg.profiles[1].lbi(); // [1] = expansion
        assert!(
            lbi_reorg > lbi_outer,
            "splitting should raise LBI: {lbi_reorg} vs {lbi_outer}"
        );
    }

    #[test]
    fn works_on_a_registry_surrogate() {
        let spec = RealWorldRegistry::get("as-caida").unwrap();
        let a = spec.generate(ScaleFactor::Tiny);
        let dev = DeviceConfig::titan_xp();
        let run = BlockReorganizer::default().multiply(&a, &a, &dev).unwrap();
        let oracle = spgemm_gustavson(&a, &a).unwrap();
        assert!(run.result.approx_eq(&oracle, 1e-9));
        assert!(run.gflops() > 0.0);
    }

    #[test]
    fn empty_matrix_is_handled() {
        let z = CsrMatrix::<f64>::zeros(16, 16);
        let dev = DeviceConfig::titan_xp();
        let run = BlockReorganizer::default().multiply(&z, &z, &dev).unwrap();
        assert_eq!(run.result.nnz(), 0);
        assert_eq!(run.stats.dominators, 0);
    }
}
