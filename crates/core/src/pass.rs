//! The full Block Reorganizer pipeline (Figure 4).
//!
//! ```text
//! precalc & classify (GPU kernel)
//!   → B-Splitting preprocessing (host CPU)
//!     → expansion: split dominators + normal blocks + gathered low
//!       performers, all writing row-relocated Ĉ
//!       → merge: Gustavson dense accumulator, B-Limited long rows
//! ```
//!
//! All preprocessing overhead is charged to the run, matching the paper's
//! measurement convention (Section V).

use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::profiler::KernelProfile;
use br_gpu_sim::trace::KernelLaunch;
use br_sparse::{CsrMatrix, Result, Scalar};
use br_spgemm::context::ProblemContext;
use br_spgemm::expansion::outer::outer_pair_block;
use br_spgemm::merge::gustavson::gustavson_merge_launch;
use br_spgemm::numeric::{default_threads, spgemm_parallel};
use br_spgemm::pipeline::{assemble_run, SpgemmRun};
use br_spgemm::workspace::Workspace;
use serde::{Deserialize, Serialize};

use crate::classify::{precalc_launch, Classification};
use crate::config::ReorganizerConfig;
use crate::gather::{combined_block_trace, compacted_block_trace, plan_gathers};
use crate::limit::LimitPlan;
use crate::split::{plan_splits, preprocess_ms, split_blocks};

/// Summary statistics of one reorganized run (the Section IV-E walkthrough
/// numbers: dominator pairs, low performers, limited rows, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReorgStats {
    /// Pairs classified as dominators.
    pub dominators: usize,
    /// Pairs classified as low performers.
    pub low_performers: usize,
    /// Pairs classified as normal.
    pub normals: usize,
    /// Expansion blocks after splitting + gathering.
    pub expansion_blocks: usize,
    /// Combined (gathered) blocks emitted.
    pub gathered_blocks: usize,
    /// Rows receiving B-Limiting during the merge.
    pub limited_rows: usize,
    /// Largest splitting factor applied.
    pub max_split_factor: u32,
}

/// Outcome of a Block Reorganizer multiplication.
#[derive(Debug, Clone)]
pub struct ReorganizerRun<T> {
    /// The numeric result (canonical CSR).
    pub result: CsrMatrix<T>,
    /// Kernel profiles: precalc, expansion, merge.
    pub profiles: Vec<KernelProfile>,
    /// Host-side preprocessing (B-Splitting) time in ms.
    pub preprocess_ms: f64,
    /// Total time (kernels + preprocessing) in ms.
    pub total_ms: f64,
    /// FLOP count.
    pub flops: u64,
    /// Classification / reorganization statistics.
    pub stats: ReorgStats,
}

impl<T: Clone> ReorganizerRun<T> {
    /// Achieved GFLOPS — the Figure 9 metric.
    pub fn gflops(&self) -> f64 {
        if self.total_ms <= 0.0 {
            0.0
        } else {
            self.flops as f64 / (self.total_ms * 1e-3) / 1e9
        }
    }

    /// Time of profiles whose name contains `tag`, in ms.
    pub fn phase_ms(&self, tag: &str) -> f64 {
        self.profiles
            .iter()
            .filter(|p| p.name.contains(tag))
            .map(|p| p.time_ms)
            .sum()
    }

    /// Repackages as a generic [`SpgemmRun`] for uniform benchmarking
    /// against the baseline methods.
    pub fn to_spgemm_run(&self) -> SpgemmRun<T> {
        SpgemmRun {
            method: "Block-Reorganizer".to_string(),
            result: self.result.clone(),
            profiles: self.profiles.clone(),
            preprocess_ms: self.preprocess_ms,
            total_ms: self.total_ms,
            flops: self.flops,
        }
    }
}

/// The Block Reorganizer optimization pass.
#[derive(Debug, Clone, Default)]
pub struct BlockReorganizer {
    config: ReorganizerConfig,
}

impl BlockReorganizer {
    /// Creates the pass with the given configuration.
    pub fn new(config: ReorganizerConfig) -> Self {
        BlockReorganizer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ReorganizerConfig {
        &self.config
    }

    /// Multiplies `C = A · B` on the given device.
    pub fn multiply<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &CsrMatrix<T>,
        device: &DeviceConfig,
    ) -> Result<ReorganizerRun<T>> {
        let ctx = ProblemContext::new(a, b)?;
        self.multiply_ctx(&ctx, device)
    }

    /// Multiplies using a precomputed [`ProblemContext`] (the benchmark
    /// harness shares one context across all methods).
    pub fn multiply_ctx<T: Scalar>(
        &self,
        ctx: &ProblemContext<T>,
        device: &DeviceConfig,
    ) -> Result<ReorganizerRun<T>> {
        let ws = Workspace::for_context(ctx);
        let classification = Classification::of(ctx, &self.config);
        let (expansion, stats, host_ms) = self.build_expansion(ctx, &ws, &classification, device);
        let limit_plan = LimitPlan::of(ctx, &self.config);
        let merge = gustavson_merge_launch(ctx, &ws, self.config.block_size, true, |r| {
            limit_plan.extra_smem(r)
        });

        let launches = vec![precalc_launch(ctx, &ws), expansion, merge];
        let run = assemble_run(
            "Block-Reorganizer",
            spgemm_parallel(&ctx.a, &ctx.b, default_threads())?,
            &launches,
            &ws.layout,
            device,
            host_ms,
            ctx.flops,
        );
        Ok(ReorganizerRun {
            result: run.result,
            profiles: run.profiles,
            preprocess_ms: run.preprocess_ms,
            total_ms: run.total_ms,
            flops: run.flops,
            stats: ReorgStats {
                limited_rows: limit_plan.limited_count(),
                ..stats
            },
        })
    }

    /// Builds the reorganized expansion launch; returns the launch, the
    /// stats accumulated so far, and the host preprocessing cost.
    fn build_expansion<T: Scalar>(
        &self,
        ctx: &ProblemContext<T>,
        ws: &Workspace,
        classification: &Classification,
        device: &DeviceConfig,
    ) -> (KernelLaunch, ReorgStats, f64) {
        let cfg = &self.config;
        let chat_offsets = ctx.chat_block_offsets();
        // The reorganizer relocates Ĉ row-major during expansion so the
        // merge reads coalesced (Section IV-B "row-wise nnz is used to
        // relocate the outer-product's elements with same row closer
        // together for faster merge").
        let row_major = true;
        let mut blocks = Vec::new();
        let mut host_ms = 0.0;
        let mut max_split_factor = 1u32;
        let mut gathered_blocks = 0usize;

        // --- dominators: split (or run unmodified when disabled) ---
        if cfg.enable_split && !classification.dominators.is_empty() {
            let plans = plan_splits(
                ctx,
                &classification.dominators,
                cfg.split_policy,
                device,
                classification.threshold,
            );
            host_ms = preprocess_ms(ctx, &plans);
            for plan in &plans {
                max_split_factor = max_split_factor.max(plan.factor);
                blocks.extend(split_blocks(
                    ctx,
                    ws,
                    plan,
                    chat_offsets[plan.pair],
                    cfg.block_size,
                    row_major,
                ));
            }
        } else {
            for &pair in &classification.dominators {
                blocks.push(outer_pair_block(
                    ctx,
                    ws,
                    pair,
                    chat_offsets[pair],
                    cfg.block_size,
                    row_major,
                ));
            }
        }

        // --- normal pairs: unmodified outer-product blocks ---
        for &pair in &classification.normals {
            blocks.push(outer_pair_block(
                ctx,
                ws,
                pair,
                chat_offsets[pair],
                cfg.block_size,
                row_major,
            ));
        }

        // --- low performers: gather (or run unmodified when disabled) ---
        if cfg.enable_gather && !classification.low_performers.is_empty() {
            let plan = plan_gathers(ctx, &classification.low_performers, cfg.gather_block);
            gathered_blocks = plan.combined.len();
            for c in &plan.combined {
                blocks.push(combined_block_trace(
                    ctx,
                    ws,
                    c,
                    &chat_offsets,
                    cfg.gather_block,
                    row_major,
                ));
            }
            for &pair in &plan.compacted {
                blocks.push(compacted_block_trace(
                    ctx,
                    ws,
                    pair,
                    &chat_offsets,
                    cfg.gather_block,
                    row_major,
                ));
            }
        } else {
            for &pair in &classification.low_performers {
                blocks.push(outer_pair_block(
                    ctx,
                    ws,
                    pair,
                    chat_offsets[pair],
                    cfg.block_size,
                    row_major,
                ));
            }
        }

        let stats = ReorgStats {
            dominators: classification.dominators.len(),
            low_performers: classification.low_performers.len(),
            normals: classification.normals.len(),
            expansion_blocks: blocks.len(),
            gathered_blocks,
            limited_rows: 0, // filled by the caller
            max_split_factor,
        };
        (
            KernelLaunch::new("reorganized-expansion", blocks),
            stats,
            host_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::chung_lu::{chung_lu, ChungLuConfig};
    use br_datasets::registry::{RealWorldRegistry, ScaleFactor};
    use br_sparse::ops::spgemm_gustavson;

    fn skewed() -> CsrMatrix<f64> {
        chung_lu(ChungLuConfig {
            gamma: 2.0,
            ..ChungLuConfig::social(3000, 21_000, 77)
        })
        .to_csr()
    }

    #[test]
    fn result_matches_oracle() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let run = BlockReorganizer::default().multiply(&a, &a, &dev).unwrap();
        let oracle = spgemm_gustavson(&a, &a).unwrap();
        assert!(run.result.approx_eq(&oracle, 1e-9));
    }

    #[test]
    fn emits_precalc_expansion_merge_profiles() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let run = BlockReorganizer::default().multiply(&a, &a, &dev).unwrap();
        let names: Vec<_> = run.profiles.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names.len(), 3);
        assert!(names[0].contains("precalc"));
        assert!(names[1].contains("expansion"));
        assert!(names[2].contains("merge"));
        assert!(run.preprocess_ms > 0.0, "splitting has host cost");
    }

    #[test]
    fn stats_reflect_classification_and_plans() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let run = BlockReorganizer::default().multiply(&a, &a, &dev).unwrap();
        let s = run.stats;
        assert!(s.dominators > 0);
        assert!(s.low_performers > s.dominators);
        assert!(s.gathered_blocks > 0);
        assert!(
            s.gathered_blocks < s.low_performers,
            "gathering must shrink the block count"
        );
        assert!(s.limited_rows > 0);
        assert!(s.max_split_factor >= 32, "auto splitting spreads over SMs");
        // splitting adds blocks; gathering removes more than it adds on a
        // hub-heavy graph, but the total must stay consistent
        assert!(s.expansion_blocks > 0);
    }

    #[test]
    fn beats_plain_outer_product_on_skewed_data() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let reorg = BlockReorganizer::default()
            .multiply_ctx(&ctx, &dev)
            .unwrap();
        let outer =
            br_spgemm::pipeline::run_method(&ctx, br_spgemm::SpgemmMethod::OuterProduct, &dev)
                .unwrap();
        assert!(
            reorg.total_ms < outer.total_ms,
            "reorganizer {} ms vs outer {} ms",
            reorg.total_ms,
            outer.total_ms
        );
    }

    #[test]
    fn improves_expansion_lbi_on_skewed_data() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let reorg = BlockReorganizer::default()
            .multiply_ctx(&ctx, &dev)
            .unwrap();
        let outer =
            br_spgemm::pipeline::run_method(&ctx, br_spgemm::SpgemmMethod::OuterProduct, &dev)
                .unwrap();
        let lbi_outer = outer.profiles[0].lbi();
        let lbi_reorg = reorg.profiles[1].lbi(); // [1] = expansion
        assert!(
            lbi_reorg > lbi_outer,
            "splitting should raise LBI: {lbi_reorg} vs {lbi_outer}"
        );
    }

    #[test]
    fn works_on_a_registry_surrogate() {
        let spec = RealWorldRegistry::get("as-caida").unwrap();
        let a = spec.generate(ScaleFactor::Tiny);
        let dev = DeviceConfig::titan_xp();
        let run = BlockReorganizer::default().multiply(&a, &a, &dev).unwrap();
        let oracle = spgemm_gustavson(&a, &a).unwrap();
        assert!(run.result.approx_eq(&oracle, 1e-9));
        assert!(run.gflops() > 0.0);
    }

    #[test]
    fn empty_matrix_is_handled() {
        let z = CsrMatrix::<f64>::zeros(16, 16);
        let dev = DeviceConfig::titan_xp();
        let run = BlockReorganizer::default().multiply(&z, &z, &dev).unwrap();
        assert_eq!(run.result.nnz(), 0);
        assert_eq!(run.stats.dominators, 0);
    }
}
