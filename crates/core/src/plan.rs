//! `ReorgPlan` — the Block Reorganizer's preprocessing as a reusable,
//! serializable artifact.
//!
//! The paper charges precalculation, classification and the B-Splitting
//! pointer rewrites to *every* multiplication (Section V). But all of that
//! work depends only on the operands' **sparsity structure**, not their
//! values — and the large-sparse-network workloads the paper targets
//! multiply the same structure repeatedly (`A·A`, iterative link analysis).
//! Separating *analysis* from *execution* lets a serving layer
//! (`br-service`) build the plan once, cache it under the operands'
//! [`ProblemSignature`], and re-execute it for every subsequent request:
//!
//! * [`ReorgPlan::build`] — precalculation + classification + B-Splitting /
//!   B-Gathering / B-Limiting planning (the expensive, structure-only part).
//! * [`ReorgPlan::execute`] — launch construction + simulated execution +
//!   the real numeric multiply (the per-request part).
//!
//! [`PlanMode`] controls the paper's measurement convention: a [`Cold`]
//! execution charges the precalculation kernel and the host-side
//! B-Splitting cost exactly as `BlockReorganizer::multiply` always has; a
//! [`Cached`] execution skips both, which is precisely the amortization a
//! plan cache buys.
//!
//! [`Cold`]: PlanMode::Cold
//! [`Cached`]: PlanMode::Cached

use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::sim::GpuSimulator;
use br_gpu_sim::trace::KernelLaunch;
use br_sparse::error::SparseError;
use br_sparse::{Result, Scalar};
use br_spgemm::accum::{effective_thresholds_for, spgemm_adaptive_planned, RowBins, ScratchPool};
use br_spgemm::context::{ProblemContext, ProblemSignature};
use br_spgemm::expansion::outer::outer_pair_block;
use br_spgemm::merge::gustavson::gustavson_merge_launch;
use br_spgemm::numeric::default_threads;
use br_spgemm::pipeline::assemble_run_on;
use br_spgemm::workspace::Workspace;
use serde::{Deserialize, Serialize};

use crate::classify::{precalc_launch, Classification};
use crate::config::ReorganizerConfig;
use crate::gather::{combined_block_trace, compacted_block_trace, plan_gathers, GatherPlan};
use crate::limit::LimitPlan;
use crate::pass::{ReorgStats, ReorganizerRun};
use crate::split::{plan_splits, preprocess_ms, split_blocks, SplitPlan};

/// How a plan execution charges preprocessing overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanMode {
    /// One-shot semantics: run the precalculation kernel and charge the
    /// host-side B-Splitting cost, as the paper measures.
    Cold,
    /// Plan-reuse semantics: analysis was paid for by an earlier request,
    /// so only expansion + merge run.
    Cached,
}

/// The full preprocessing artifact of one `(structure(A), structure(B),
/// config, device)` combination.
///
/// Everything here is derived from the operands' pointer/index arrays; the
/// plan is therefore valid for *any* operand pair whose
/// [`ProblemSignature`] matches [`ReorgPlan::signature`], regardless of the
/// stored values. It is plain data (`Serialize`/`Deserialize`), cheap to
/// share across threads behind an `Arc`, and device-tagged because split
/// factors depend on the SM count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReorgPlan {
    /// Configuration the plan was built under.
    pub config: ReorganizerConfig,
    /// Name of the device the split factors were chosen for.
    pub device_name: String,
    /// Structural signature of the operands the plan applies to.
    pub signature: ProblemSignature,
    /// Workload precalculation + categorization (Section IV-B).
    pub classification: Classification,
    /// B-Splitting plans, one per dominator (empty when splitting is
    /// disabled or no dominators exist).
    pub split_plans: Vec<SplitPlan>,
    /// B-Gathering plan (empty when gathering is disabled or no low
    /// performers exist).
    pub gather_plan: GatherPlan,
    /// B-Limiting row flags for the merge.
    pub limit_plan: LimitPlan,
    /// Host numeric row binning (adaptive merge engine): classified once at
    /// build time from the context's `row_products` and reused — with the
    /// per-row partition weights it carries — on every cached execution.
    pub bins: RowBins,
    /// Host-side B-Splitting preprocessing cost paid at build time, ms.
    pub preprocess_ms: f64,
}

impl ReorgPlan {
    /// Runs the full analysis pipeline: precalculation, classification, and
    /// B-Splitting / B-Gathering / B-Limiting planning.
    pub fn build<T: Scalar>(
        ctx: &ProblemContext<T>,
        config: &ReorganizerConfig,
        device: &DeviceConfig,
    ) -> Self {
        let classification = Classification::of(ctx, config);
        let split_plans = if config.enable_split && !classification.dominators.is_empty() {
            plan_splits(
                ctx,
                &classification.dominators,
                config.split_policy,
                device,
                classification.threshold,
            )
        } else {
            Vec::new()
        };
        let host_ms = preprocess_ms(ctx, &split_plans);
        let gather_plan = if config.enable_gather && !classification.low_performers.is_empty() {
            plan_gathers(ctx, &classification.low_performers, config.gather_block)
        } else {
            GatherPlan::default()
        };
        let limit_plan = LimitPlan::of(ctx, config);
        let bins = RowBins::classify(&ctx.row_products, effective_thresholds_for(ctx.b.ncols()));
        ReorgPlan {
            config: *config,
            device_name: device.name.clone(),
            signature: ctx.signature(),
            classification,
            split_plans,
            gather_plan,
            limit_plan,
            bins,
            preprocess_ms: host_ms,
        }
    }

    /// Executes the plan on the given device (fresh simulator).
    pub fn execute<T: Scalar>(
        &self,
        ctx: &ProblemContext<T>,
        device: &DeviceConfig,
        mode: PlanMode,
    ) -> Result<ReorganizerRun<T>> {
        self.execute_on(&GpuSimulator::new(device.clone()), ctx, mode)
    }

    /// Executes the plan against a caller-owned simulator (the `br-service`
    /// worker pool keeps one per worker).
    ///
    /// Fails with [`SparseError::InvalidStructure`] when `ctx` does not
    /// structurally match the operands the plan was built for.
    pub fn execute_on<T: Scalar>(
        &self,
        sim: &GpuSimulator,
        ctx: &ProblemContext<T>,
        mode: PlanMode,
    ) -> Result<ReorganizerRun<T>> {
        self.execute_with_scratch(sim, ctx, mode, None)
    }

    /// [`ReorgPlan::execute_on`] with an optional merge-scratch pool — the
    /// `br-service` workers pass their per-worker pool so steady-state jobs
    /// reuse warmed accumulators instead of allocating per execution. The
    /// host numeric multiply runs through the adaptive row-binned engine
    /// using the plan's cached [`RowBins`] (no re-binning, no weights scan).
    pub fn execute_with_scratch<T: Scalar>(
        &self,
        sim: &GpuSimulator,
        ctx: &ProblemContext<T>,
        mode: PlanMode,
        pool: Option<&ScratchPool<T>>,
    ) -> Result<ReorganizerRun<T>> {
        if self.signature != ctx.signature() {
            return Err(SparseError::InvalidStructure(format!(
                "reorganization plan was built for a different sparsity structure \
                 (plan {:?}, operands {:?})",
                self.signature,
                ctx.signature()
            )));
        }
        let ws = Workspace::for_context(ctx);
        let (expansion, mut stats) = self.expansion_launch(ctx, &ws);
        stats.limited_rows = self.limit_plan.limited_count();
        let merge = gustavson_merge_launch(ctx, &ws, self.config.block_size, true, |r| {
            self.limit_plan.extra_smem(r)
        });

        let (launches, host_ms) = match mode {
            PlanMode::Cold => (
                vec![precalc_launch(ctx, &ws), expansion, merge],
                self.preprocess_ms,
            ),
            PlanMode::Cached => (vec![expansion, merge], 0.0),
        };
        let run = assemble_run_on(
            sim,
            "Block-Reorganizer",
            spgemm_adaptive_planned(&ctx.a, &ctx.b, default_threads(), &self.bins, pool)?,
            &launches,
            &ws.layout,
            host_ms,
            ctx.flops,
        );
        Ok(ReorganizerRun {
            result: run.result,
            profiles: run.profiles,
            preprocess_ms: run.preprocess_ms,
            total_ms: run.total_ms,
            flops: run.flops,
            stats,
        })
    }

    /// Builds the reorganized expansion launch from the stored plans:
    /// split dominators + normal blocks + gathered low performers, all
    /// writing row-relocated `Ĉ` (Section IV-B).
    pub fn expansion_launch<T: Scalar>(
        &self,
        ctx: &ProblemContext<T>,
        ws: &Workspace,
    ) -> (KernelLaunch, ReorgStats) {
        let cfg = &self.config;
        let cls = &self.classification;
        let chat_offsets = ctx.chat_block_offsets();
        // The reorganizer relocates Ĉ row-major during expansion so the
        // merge reads coalesced.
        let row_major = true;
        let mut blocks = Vec::new();
        let mut max_split_factor = 1u32;
        let mut gathered_blocks = 0usize;

        // --- dominators: split (or run unmodified when disabled) ---
        if cfg.enable_split && !cls.dominators.is_empty() {
            for plan in &self.split_plans {
                max_split_factor = max_split_factor.max(plan.factor);
                blocks.extend(split_blocks(
                    ctx,
                    ws,
                    plan,
                    chat_offsets[plan.pair],
                    cfg.block_size,
                    row_major,
                ));
            }
        } else {
            for &pair in &cls.dominators {
                blocks.push(outer_pair_block(
                    ctx,
                    ws,
                    pair,
                    chat_offsets[pair],
                    cfg.block_size,
                    row_major,
                ));
            }
        }

        // --- normal pairs: unmodified outer-product blocks ---
        for &pair in &cls.normals {
            blocks.push(outer_pair_block(
                ctx,
                ws,
                pair,
                chat_offsets[pair],
                cfg.block_size,
                row_major,
            ));
        }

        // --- low performers: gather (or run unmodified when disabled) ---
        if cfg.enable_gather && !cls.low_performers.is_empty() {
            gathered_blocks = self.gather_plan.combined.len();
            for c in &self.gather_plan.combined {
                blocks.push(combined_block_trace(
                    ctx,
                    ws,
                    c,
                    &chat_offsets,
                    cfg.gather_block,
                    row_major,
                ));
            }
            for &pair in &self.gather_plan.compacted {
                blocks.push(compacted_block_trace(
                    ctx,
                    ws,
                    pair,
                    &chat_offsets,
                    cfg.gather_block,
                    row_major,
                ));
            }
        } else {
            for &pair in &cls.low_performers {
                blocks.push(outer_pair_block(
                    ctx,
                    ws,
                    pair,
                    chat_offsets[pair],
                    cfg.block_size,
                    row_major,
                ));
            }
        }

        let stats = ReorgStats {
            dominators: cls.dominators.len(),
            low_performers: cls.low_performers.len(),
            normals: cls.normals.len(),
            expansion_blocks: blocks.len(),
            gathered_blocks,
            limited_rows: 0, // filled by the caller
            max_split_factor,
        };
        (KernelLaunch::new("reorganized-expansion", blocks), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::BlockReorganizer;
    use br_datasets::chung_lu::{chung_lu, ChungLuConfig};
    use br_sparse::CsrMatrix;

    fn skewed() -> CsrMatrix<f64> {
        chung_lu(ChungLuConfig {
            gamma: 2.0,
            ..ChungLuConfig::social(2500, 17_000, 33)
        })
        .to_csr()
    }

    #[test]
    fn cold_execution_matches_the_one_shot_pass() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let cfg = ReorganizerConfig::default();
        let plan = ReorgPlan::build(&ctx, &cfg, &dev);
        let planned = plan.execute(&ctx, &dev, PlanMode::Cold).unwrap();
        let oneshot = BlockReorganizer::new(cfg).multiply_ctx(&ctx, &dev).unwrap();
        // The timing model's contention pass accumulates over a HashMap, so
        // two runs may differ in the last float bits — compare tightly, not
        // bitwise.
        let rel = (planned.total_ms - oneshot.total_ms).abs() / oneshot.total_ms.max(1e-12);
        assert!(rel < 1e-6, "cold planned run must time like the one-shot");
        assert_eq!(planned.preprocess_ms, oneshot.preprocess_ms);
        assert_eq!(planned.stats, oneshot.stats);
        assert_eq!(planned.result.ptr(), oneshot.result.ptr());
        assert!(planned.result.approx_eq(&oneshot.result, 0.0));
    }

    #[test]
    fn cached_execution_skips_precalc_and_host_preprocessing() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let plan = ReorgPlan::build(&ctx, &ReorganizerConfig::default(), &dev);
        let cold = plan.execute(&ctx, &dev, PlanMode::Cold).unwrap();
        let warm = plan.execute(&ctx, &dev, PlanMode::Cached).unwrap();
        assert_eq!(warm.profiles.len(), 2, "expansion + merge only");
        assert_eq!(warm.preprocess_ms, 0.0);
        assert!(
            warm.total_ms < cold.total_ms,
            "reuse must be cheaper: {} vs {}",
            warm.total_ms,
            cold.total_ms
        );
        // The numeric result is identical either way.
        assert_eq!(warm.result.ptr(), cold.result.ptr());
        assert_eq!(warm.result.idx(), cold.result.idx());
    }

    #[test]
    fn plan_survives_a_serde_round_trip() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let plan = ReorgPlan::build(&ctx, &ReorganizerConfig::default(), &dev);
        let json = serde_json::to_string(&plan).unwrap();
        let back: ReorgPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // The deserialized plan still executes.
        let run = back.execute(&ctx, &dev, PlanMode::Cached).unwrap();
        assert!(run.total_ms > 0.0);
    }

    #[test]
    fn executing_against_mismatched_operands_is_rejected() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let plan = ReorgPlan::build(&ctx, &ReorganizerConfig::default(), &dev);
        let other = CsrMatrix::<f64>::identity(a.nrows());
        let other_ctx = ProblemContext::new(&other, &other).unwrap();
        assert!(plan.execute(&other_ctx, &dev, PlanMode::Cached).is_err());
    }

    #[test]
    fn plan_is_value_independent() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let plan = ReorgPlan::build(&ctx, &ReorganizerConfig::default(), &dev);
        // Same structure, different values: the plan still applies, and the
        // result reflects the new values.
        let scaled = a.map_values(|v| v * 2.0);
        let scaled_ctx = ProblemContext::new(&scaled, &scaled).unwrap();
        let run = plan.execute(&scaled_ctx, &dev, PlanMode::Cached).unwrap();
        let oracle = br_sparse::ops::spgemm_gustavson(&scaled, &scaled).unwrap();
        assert!(run.result.approx_eq(&oracle, 1e-9));
    }
}
