//! `ReorgPlan` — the Block Reorganizer's preprocessing as a reusable,
//! serializable artifact.
//!
//! The paper charges precalculation, classification and the B-Splitting
//! pointer rewrites to *every* multiplication (Section V). But all of that
//! work depends only on the operands' **sparsity structure**, not their
//! values — and the large-sparse-network workloads the paper targets
//! multiply the same structure repeatedly (`A·A`, iterative link analysis).
//! Separating *analysis* from *execution* lets a serving layer
//! (`br-service`) build the plan once, cache it under the operands'
//! [`ProblemSignature`], and re-execute it for every subsequent request:
//!
//! * [`ReorgPlan::build`] — precalculation + classification + B-Splitting /
//!   B-Gathering / B-Limiting planning (the expensive, structure-only part).
//! * [`ReorgPlan::execute`] — launch construction + simulated execution +
//!   the real numeric multiply (the per-request part).
//!
//! [`PlanMode`] controls the paper's measurement convention: a [`Cold`]
//! execution charges the precalculation kernel and the host-side
//! B-Splitting cost exactly as `BlockReorganizer::multiply` always has; a
//! [`Cached`] execution skips both, which is precisely the amortization a
//! plan cache buys.
//!
//! [`Cold`]: PlanMode::Cold
//! [`Cached`]: PlanMode::Cached

use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::sim::GpuSimulator;
use br_gpu_sim::trace::KernelLaunch;
use br_sparse::error::SparseError;
use br_sparse::{Result, Scalar};
use br_spgemm::accum::{
    effective_thresholds_for, global_thresholds, spgemm_adaptive_planned, RowBins, ScratchPool,
};
use br_spgemm::context::{ProblemContext, ProblemSignature};
use br_spgemm::estimate::{
    estimate_workload, exact_plan_ops, select_method, select_thresholds, EstimatorConfig,
    MethodChoice,
};
use br_spgemm::expansion::outer::outer_pair_block;
use br_spgemm::merge::kway::binned_merge_launches;
use br_spgemm::numeric::default_threads;
use br_spgemm::pipeline::assemble_run_on;
use br_spgemm::workspace::Workspace;
use serde::{Deserialize, Serialize};

use crate::classify::{precalc_launch, Classification};
use crate::config::ReorganizerConfig;
use crate::gather::{combined_block_trace, compacted_block_trace, plan_gathers, GatherPlan};
use crate::limit::LimitPlan;
use crate::pass::{ReorgStats, ReorganizerRun};
use crate::reorder::{self, Permutation, ReorderStrategy};
use crate::split::{plan_splits, preprocess_ms, split_blocks, SplitPlan};

/// How a plan execution charges preprocessing overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanMode {
    /// One-shot semantics: run the precalculation kernel and charge the
    /// host-side B-Splitting cost, as the paper measures.
    Cold,
    /// Plan-reuse semantics: analysis was paid for by an earlier request,
    /// so only expansion + merge run.
    Cached,
}

/// The full preprocessing artifact of one `(structure(A), structure(B),
/// config, device)` combination.
///
/// Everything here is derived from the operands' pointer/index arrays; the
/// plan is therefore valid for *any* operand pair whose
/// [`ProblemSignature`] matches [`ReorgPlan::signature`], regardless of the
/// stored values. It is plain data (`Serialize`/`Deserialize`), cheap to
/// share across threads behind an `Arc`, and device-tagged because split
/// factors depend on the SM count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReorgPlan {
    /// Configuration the plan was built under.
    pub config: ReorganizerConfig,
    /// Name of the device the split factors were chosen for.
    pub device_name: String,
    /// Structural signature of the operands the plan applies to.
    pub signature: ProblemSignature,
    /// Workload precalculation + categorization (Section IV-B).
    pub classification: Classification,
    /// B-Splitting plans, one per dominator (empty when splitting is
    /// disabled or no dominators exist).
    pub split_plans: Vec<SplitPlan>,
    /// B-Gathering plan (empty when gathering is disabled or no low
    /// performers exist).
    pub gather_plan: GatherPlan,
    /// B-Limiting row flags for the merge.
    pub limit_plan: LimitPlan,
    /// Host numeric row binning (adaptive merge engine): classified once at
    /// build time from the context's `row_products` and reused — with the
    /// per-row partition weights it carries — on every cached execution.
    pub bins: RowBins,
    /// Host-side B-Splitting preprocessing cost paid at build time, ms.
    pub preprocess_ms: f64,
    /// Expansion method the planner chose for this problem. Always
    /// [`MethodChoice::Reorganized`] on the exact path; the estimator may
    /// route a problem to a baseline scheme, which swaps the *simulated*
    /// launch stream only — the host numeric multiply always runs the
    /// adaptive engine, so output is bit-identical either way.
    pub method: MethodChoice,
    /// The *resolved* row-reordering strategy this plan was analyzed
    /// under ([`ReorderStrategy::Auto`] never appears here — it resolves
    /// to a concrete strategy at build time). [`ReorderStrategy::None`]
    /// is the default and keeps the plan byte-identical to the
    /// pre-reordering pipeline.
    pub reorder: ReorderStrategy,
    /// Row permutation of `A` the plan's analysis ran over, replayed on
    /// every execution (permute `A`, run the planned pipeline, un-permute
    /// the rows of `C`). `None` means identity — every default-strategy
    /// plan, and any strategy whose order degenerates to the input order.
    pub permutation: Option<Permutation>,
    /// How this plan's workloads were obtained (exact vs estimated).
    pub build: PlanBuild,
}

/// Provenance of a plan's workload quantities: whether they were exactly
/// precalculated or sampled, how tight the estimate was, and the modeled
/// host cost of the build — the deterministic cold-plan latency metric the
/// `estplan` bench suite gates on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanBuild {
    /// Whether the sampling estimator was asked for (even if it fell back).
    pub estimated: bool,
    /// Whether the confidence band exceeded the tolerance, forcing exact
    /// precalculation on top of the sampling pass.
    pub fallback: bool,
    /// Columns of `A` the estimator sampled (0 on the exact path).
    pub sampled_cols: u64,
    /// Relative confidence-band half-width, in ppm (0 on the exact path).
    pub rel_band_ppm: u64,
    /// Modeled host operations the plan build cost: selection + scatter +
    /// sampled symbolic on the estimated path, `row_products` scan + full
    /// symbolic SPA on the exact path (shared block-products work excluded
    /// from both).
    pub ops: u64,
    /// [`EstimatorConfig::fingerprint`] the plan was built under; 0 on the
    /// exact path. Part of the plan-cache key.
    pub estimator_fingerprint: u64,
}

impl PlanBuild {
    /// Provenance of an exactly-precalculated plan.
    fn exact(ops: u64) -> Self {
        PlanBuild {
            estimated: false,
            fallback: false,
            sampled_cols: 0,
            rel_band_ppm: 0,
            ops,
            estimator_fingerprint: 0,
        }
    }
}

impl ReorgPlan {
    /// Runs the full analysis pipeline: precalculation, classification, and
    /// B-Splitting / B-Gathering / B-Limiting planning.
    pub fn build<T: Scalar>(
        ctx: &ProblemContext<T>,
        config: &ReorganizerConfig,
        device: &DeviceConfig,
    ) -> Self {
        Self::build_with_reorder(ctx, config, device, ReorderStrategy::None)
    }

    /// [`ReorgPlan::build`] with a row-reordering stage in front: the
    /// strategy's [`Permutation`] over `A`'s row structure is computed
    /// once, the whole analysis (classification, splitting, gathering,
    /// limiting, row binning) runs over the *permuted* problem, and both
    /// the resolved strategy and the permutation are stored in the plan
    /// so cached executions replay them. The plan's signature stays that
    /// of the **original** operands — callers never permute anything
    /// themselves, and the executed result is un-permuted on output, so
    /// it is bit-identical to the unreordered multiply.
    pub fn build_with_reorder<T: Scalar>(
        ctx: &ProblemContext<T>,
        config: &ReorganizerConfig,
        device: &DeviceConfig,
        strategy: ReorderStrategy,
    ) -> Self {
        let (resolved, permutation) = reorder::plan_permutation(&ctx.a, strategy);
        match permutation {
            Some(p) => {
                let mut plan = Self::build_exact_at(&ctx.permute_rows(p.forward()), config, device);
                plan.signature = ctx.signature();
                plan.reorder = resolved;
                plan.permutation = Some(p);
                plan
            }
            None => {
                let mut plan = Self::build_exact_at(ctx, config, device);
                plan.reorder = resolved;
                plan
            }
        }
    }

    /// The exact analysis pipeline over `ctx` as given (no reordering).
    fn build_exact_at<T: Scalar>(
        ctx: &ProblemContext<T>,
        config: &ReorganizerConfig,
        device: &DeviceConfig,
    ) -> Self {
        let classification = Classification::of(ctx, config);
        let split_plans = if config.enable_split && !classification.dominators.is_empty() {
            plan_splits(
                ctx,
                &classification.dominators,
                config.split_policy,
                device,
                classification.threshold,
            )
        } else {
            Vec::new()
        };
        let host_ms = preprocess_ms(ctx, &split_plans);
        let gather_plan = if config.enable_gather && !classification.low_performers.is_empty() {
            plan_gathers(ctx, &classification.low_performers, config.gather_block)
        } else {
            GatherPlan::default()
        };
        let limit_plan = LimitPlan::of(ctx, config);
        let bins = RowBins::classify(&ctx.row_products, effective_thresholds_for(ctx.b.ncols()));
        ReorgPlan {
            config: *config,
            device_name: device.name.clone(),
            signature: ctx.signature(),
            classification,
            split_plans,
            gather_plan,
            limit_plan,
            bins,
            preprocess_ms: host_ms,
            method: MethodChoice::Reorganized,
            reorder: ReorderStrategy::None,
            permutation: None,
            build: PlanBuild::exact(exact_plan_ops(ctx)),
        }
    }

    /// [`ReorgPlan::build`] driven by the sampling estimator: per-row
    /// workloads and `nnz(C)` are extrapolated from a seeded column/row
    /// sample, the expansion method is chosen per problem, and the merge
    /// bin thresholds are sized from the estimated distribution. When the
    /// estimate's confidence band is wider than `estimator.tolerance`, the
    /// planner falls back to exact precalculation (charging both passes).
    ///
    /// The resulting plan is still a value-independent artifact: the sample
    /// is derived from the operands' structure hashes and the estimator
    /// fingerprint, so structurally identical problems always produce the
    /// identical plan.
    pub fn build_estimated<T: Scalar>(
        ctx: &ProblemContext<T>,
        config: &ReorganizerConfig,
        device: &DeviceConfig,
        estimator: &EstimatorConfig,
    ) -> Self {
        Self::build_estimated_with_reorder(ctx, config, device, estimator, ReorderStrategy::None)
    }

    /// [`ReorgPlan::build_estimated`] with the reordering stage of
    /// [`ReorgPlan::build_with_reorder`] in front: the estimator's
    /// sampling, threshold selection, and method choice all observe the
    /// *permuted* structure, and the stored plan carries the permutation
    /// alongside the estimated workloads.
    pub fn build_estimated_with_reorder<T: Scalar>(
        ctx: &ProblemContext<T>,
        config: &ReorganizerConfig,
        device: &DeviceConfig,
        estimator: &EstimatorConfig,
        strategy: ReorderStrategy,
    ) -> Self {
        let (resolved, permutation) = reorder::plan_permutation(&ctx.a, strategy);
        match permutation {
            Some(p) => {
                let mut plan = Self::build_estimated_at(
                    &ctx.permute_rows(p.forward()),
                    config,
                    device,
                    estimator,
                );
                plan.signature = ctx.signature();
                plan.reorder = resolved;
                plan.permutation = Some(p);
                plan
            }
            None => {
                let mut plan = Self::build_estimated_at(ctx, config, device, estimator);
                plan.reorder = resolved;
                plan
            }
        }
    }

    /// The estimated analysis pipeline over `ctx` as given (no
    /// reordering).
    fn build_estimated_at<T: Scalar>(
        ctx: &ProblemContext<T>,
        config: &ReorganizerConfig,
        device: &DeviceConfig,
        estimator: &EstimatorConfig,
    ) -> Self {
        let est = estimate_workload(ctx, estimator);
        let rel_band_ppm = (est.rel_band * 1e6) as u64;
        if !est.within(estimator) {
            // Band too wide: pay for exact precalc on top of the sample.
            let mut plan = Self::build_exact_at(ctx, config, device);
            plan.build = PlanBuild {
                estimated: true,
                fallback: true,
                sampled_cols: est.sampled_cols as u64,
                rel_band_ppm,
                ops: est.ops + plan.build.ops,
                estimator_fingerprint: estimator.fingerprint(),
            };
            return plan;
        }
        // Classification, splitting, and gathering read only the exact
        // block-products pass, which both paths share — identical to build.
        let classification = Classification::of(ctx, config);
        let split_plans = if config.enable_split && !classification.dominators.is_empty() {
            plan_splits(
                ctx,
                &classification.dominators,
                config.split_policy,
                device,
                classification.threshold,
            )
        } else {
            Vec::new()
        };
        let host_ms = preprocess_ms(ctx, &split_plans);
        let gather_plan = if config.enable_gather && !classification.low_performers.is_empty() {
            plan_gathers(ctx, &classification.low_performers, config.gather_block)
        } else {
            GatherPlan::default()
        };
        // Limiting and binning run from the *extrapolated* row workloads.
        // Under-estimates are safe: the merge hash grows on demand, and bin
        // choice can never change the numeric result.
        let limit_plan =
            LimitPlan::from_products(&est.row_products, ctx.intermediate_total, config);
        let thresholds =
            global_thresholds().unwrap_or_else(|| select_thresholds(&est, ctx.ncols()));
        let bins = RowBins::classify(&est.row_products, thresholds);
        let method = select_method(ctx, &est);
        ReorgPlan {
            config: *config,
            device_name: device.name.clone(),
            signature: ctx.signature(),
            classification,
            split_plans,
            gather_plan,
            limit_plan,
            bins,
            preprocess_ms: host_ms,
            method,
            reorder: ReorderStrategy::None,
            permutation: None,
            build: PlanBuild {
                estimated: true,
                fallback: false,
                sampled_cols: est.sampled_cols as u64,
                rel_band_ppm,
                ops: est.ops,
                estimator_fingerprint: estimator.fingerprint(),
            },
        }
    }

    /// Executes the plan on the given device (fresh simulator).
    pub fn execute<T: Scalar>(
        &self,
        ctx: &ProblemContext<T>,
        device: &DeviceConfig,
        mode: PlanMode,
    ) -> Result<ReorganizerRun<T>> {
        self.execute_on(&GpuSimulator::new(device.clone()), ctx, mode)
    }

    /// Executes the plan against a caller-owned simulator (the `br-service`
    /// worker pool keeps one per worker).
    ///
    /// Fails with [`SparseError::InvalidStructure`] when `ctx` does not
    /// structurally match the operands the plan was built for.
    pub fn execute_on<T: Scalar>(
        &self,
        sim: &GpuSimulator,
        ctx: &ProblemContext<T>,
        mode: PlanMode,
    ) -> Result<ReorganizerRun<T>> {
        self.execute_with_scratch(sim, ctx, mode, None)
    }

    /// [`ReorgPlan::execute_on`] with an optional merge-scratch pool — the
    /// `br-service` workers pass their per-worker pool so steady-state jobs
    /// reuse warmed accumulators instead of allocating per execution. The
    /// host numeric multiply runs through the adaptive row-binned engine
    /// using the plan's cached [`RowBins`] (no re-binning, no weights scan).
    pub fn execute_with_scratch<T: Scalar>(
        &self,
        sim: &GpuSimulator,
        ctx: &ProblemContext<T>,
        mode: PlanMode,
        pool: Option<&ScratchPool<T>>,
    ) -> Result<ReorganizerRun<T>> {
        if self.signature != ctx.signature() {
            return Err(SparseError::InvalidStructure(format!(
                "reorganization plan was built for a different sparsity structure \
                 (plan {:?}, operands {:?})",
                self.signature,
                ctx.signature()
            )));
        }
        // Replay the plan's row reordering: every launch (and the host
        // numeric multiply) runs over the permuted problem the analysis
        // saw; the output rows are scattered back below, so callers get
        // the bit-identical unreordered result. Workspace totals are
        // permutation-invariant, so the layout is unchanged either way.
        let permuted;
        let ctx = match &self.permutation {
            Some(p) => {
                permuted = ctx.permute_rows(p.forward());
                &permuted
            }
            None => ctx,
        };
        let ws = Workspace::for_context(ctx);
        // The chosen method swaps the simulated launch stream; the host
        // numeric multiply below always runs the adaptive engine with the
        // plan's bins, so the result is bit-identical whichever method the
        // estimator picked.
        let (name, launches, host_ms, stats) = match self.method {
            MethodChoice::Reorganized => {
                let (expansion, mut stats) = self.expansion_launch(ctx, &ws);
                stats.limited_rows = self.limit_plan.limited_count();
                // Bin-dispatched merge: one Gustavson launch, plus a k-way
                // tournament launch when the plan's bins route rows there.
                // With an empty kway bin this is exactly the old single
                // launch, so kway-off plans simulate identically.
                let merge = binned_merge_launches(
                    ctx,
                    &ws,
                    self.config.block_size,
                    true,
                    &self.bins,
                    |r| self.limit_plan.extra_smem(r),
                );
                let (launches, host_ms) = match mode {
                    PlanMode::Cold => {
                        let mut v = vec![precalc_launch(ctx, &ws), expansion];
                        v.extend(merge);
                        (v, self.preprocess_ms)
                    }
                    PlanMode::Cached => {
                        let mut v = vec![expansion];
                        v.extend(merge);
                        (v, 0.0)
                    }
                };
                ("Block-Reorganizer", launches, host_ms, stats)
            }
            // Baseline methods carry no reorganizer preprocessing, and
            // their launch streams already include any symbolic phase the
            // scheme itself pays (e.g. cuSPARSE's sizing pass) — so Cold
            // and Cached execute identically, matching the standalone
            // baselines in `br_spgemm::methods`.
            MethodChoice::RowProduct => (
                self.method.name(),
                br_spgemm::methods::row_product::launches(ctx, &ws),
                0.0,
                ReorgStats::default(),
            ),
            MethodChoice::OuterProduct => (
                self.method.name(),
                br_spgemm::methods::outer_product::launches(ctx, &ws),
                0.0,
                ReorgStats::default(),
            ),
            MethodChoice::Esc => (
                self.method.name(),
                br_spgemm::methods::cusp_esc::launches(ctx, &ws),
                0.0,
                ReorgStats::default(),
            ),
            MethodChoice::Hash => (
                self.method.name(),
                br_spgemm::methods::cusparse_like::launches(ctx, &ws),
                0.0,
                ReorgStats::default(),
            ),
        };
        let mut numeric =
            spgemm_adaptive_planned(&ctx.a, &ctx.b, default_threads(), &self.bins, pool)?;
        if let Some(p) = &self.permutation {
            // Row i of the permuted product is row forward[i] of the real
            // one; gathering by the inverse restores the original order
            // without touching any within-row entry.
            numeric = numeric.permute_rows(p.inverse());
        }
        let run = assemble_run_on(
            sim, name, numeric, &launches, &ws.layout, host_ms, ctx.flops,
        );
        Ok(ReorganizerRun {
            result: run.result,
            profiles: run.profiles,
            preprocess_ms: run.preprocess_ms,
            total_ms: run.total_ms,
            flops: run.flops,
            stats,
        })
    }

    /// Builds the reorganized expansion launch from the stored plans:
    /// split dominators + normal blocks + gathered low performers, all
    /// writing row-relocated `Ĉ` (Section IV-B).
    pub fn expansion_launch<T: Scalar>(
        &self,
        ctx: &ProblemContext<T>,
        ws: &Workspace,
    ) -> (KernelLaunch, ReorgStats) {
        let cfg = &self.config;
        let cls = &self.classification;
        let chat_offsets = ctx.chat_block_offsets();
        // The reorganizer relocates Ĉ row-major during expansion so the
        // merge reads coalesced.
        let row_major = true;
        let mut blocks = Vec::new();
        let mut max_split_factor = 1u32;
        let mut gathered_blocks = 0usize;

        // --- dominators: split (or run unmodified when disabled) ---
        if cfg.enable_split && !cls.dominators.is_empty() {
            for plan in &self.split_plans {
                max_split_factor = max_split_factor.max(plan.factor);
                blocks.extend(split_blocks(
                    ctx,
                    ws,
                    plan,
                    chat_offsets[plan.pair],
                    cfg.block_size,
                    row_major,
                ));
            }
        } else {
            for &pair in &cls.dominators {
                blocks.push(outer_pair_block(
                    ctx,
                    ws,
                    pair,
                    chat_offsets[pair],
                    cfg.block_size,
                    row_major,
                ));
            }
        }

        // --- normal pairs: unmodified outer-product blocks ---
        for &pair in &cls.normals {
            blocks.push(outer_pair_block(
                ctx,
                ws,
                pair,
                chat_offsets[pair],
                cfg.block_size,
                row_major,
            ));
        }

        // --- low performers: gather (or run unmodified when disabled) ---
        if cfg.enable_gather && !cls.low_performers.is_empty() {
            gathered_blocks = self.gather_plan.combined.len();
            for c in &self.gather_plan.combined {
                blocks.push(combined_block_trace(
                    ctx,
                    ws,
                    c,
                    &chat_offsets,
                    cfg.gather_block,
                    row_major,
                ));
            }
            for &pair in &self.gather_plan.compacted {
                blocks.push(compacted_block_trace(
                    ctx,
                    ws,
                    pair,
                    &chat_offsets,
                    cfg.gather_block,
                    row_major,
                ));
            }
        } else {
            for &pair in &cls.low_performers {
                blocks.push(outer_pair_block(
                    ctx,
                    ws,
                    pair,
                    chat_offsets[pair],
                    cfg.block_size,
                    row_major,
                ));
            }
        }

        let stats = ReorgStats {
            dominators: cls.dominators.len(),
            low_performers: cls.low_performers.len(),
            normals: cls.normals.len(),
            expansion_blocks: blocks.len(),
            gathered_blocks,
            limited_rows: 0, // filled by the caller
            max_split_factor,
        };
        (KernelLaunch::new("reorganized-expansion", blocks), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::BlockReorganizer;
    use br_datasets::chung_lu::{chung_lu, ChungLuConfig};
    use br_sparse::CsrMatrix;

    fn skewed() -> CsrMatrix<f64> {
        chung_lu(ChungLuConfig {
            gamma: 2.0,
            ..ChungLuConfig::social(2500, 17_000, 33)
        })
        .to_csr()
    }

    #[test]
    fn cold_execution_matches_the_one_shot_pass() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let cfg = ReorganizerConfig::default();
        let plan = ReorgPlan::build(&ctx, &cfg, &dev);
        let planned = plan.execute(&ctx, &dev, PlanMode::Cold).unwrap();
        let oneshot = BlockReorganizer::new(cfg).multiply_ctx(&ctx, &dev).unwrap();
        // The timing model's contention pass accumulates over a HashMap, so
        // two runs may differ in the last float bits — compare tightly, not
        // bitwise.
        let rel = (planned.total_ms - oneshot.total_ms).abs() / oneshot.total_ms.max(1e-12);
        assert!(rel < 1e-6, "cold planned run must time like the one-shot");
        assert_eq!(planned.preprocess_ms, oneshot.preprocess_ms);
        assert_eq!(planned.stats, oneshot.stats);
        assert_eq!(planned.result.ptr(), oneshot.result.ptr());
        assert!(planned.result.approx_eq(&oneshot.result, 0.0));
    }

    #[test]
    fn cached_execution_skips_precalc_and_host_preprocessing() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let plan = ReorgPlan::build(&ctx, &ReorganizerConfig::default(), &dev);
        let cold = plan.execute(&ctx, &dev, PlanMode::Cold).unwrap();
        let warm = plan.execute(&ctx, &dev, PlanMode::Cached).unwrap();
        assert_eq!(warm.profiles.len(), 2, "expansion + merge only");
        assert_eq!(warm.preprocess_ms, 0.0);
        assert!(
            warm.total_ms < cold.total_ms,
            "reuse must be cheaper: {} vs {}",
            warm.total_ms,
            cold.total_ms
        );
        // The numeric result is identical either way.
        assert_eq!(warm.result.ptr(), cold.result.ptr());
        assert_eq!(warm.result.idx(), cold.result.idx());
    }

    #[test]
    fn plan_survives_a_serde_round_trip() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let plan = ReorgPlan::build(&ctx, &ReorganizerConfig::default(), &dev);
        let json = serde_json::to_string(&plan).unwrap();
        let back: ReorgPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // The deserialized plan still executes.
        let run = back.execute(&ctx, &dev, PlanMode::Cached).unwrap();
        assert!(run.total_ms > 0.0);
    }

    #[test]
    fn executing_against_mismatched_operands_is_rejected() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let plan = ReorgPlan::build(&ctx, &ReorganizerConfig::default(), &dev);
        let other = CsrMatrix::<f64>::identity(a.nrows());
        let other_ctx = ProblemContext::new(&other, &other).unwrap();
        assert!(plan.execute(&other_ctx, &dev, PlanMode::Cached).is_err());
    }

    #[test]
    fn estimated_plan_output_is_bit_identical_to_exact() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let cfg = ReorganizerConfig::default();
        let exact = ReorgPlan::build(&ctx, &cfg, &dev);
        let est = ReorgPlan::build_estimated(&ctx, &cfg, &dev, &EstimatorConfig::default());
        assert!(est.build.estimated);
        assert!(!exact.build.estimated);
        assert!(
            est.build.fallback || est.build.ops * 2 <= exact.build.ops,
            "estimated build must be >=2x cheaper: {} vs {}",
            est.build.ops,
            exact.build.ops
        );
        for mode in [PlanMode::Cold, PlanMode::Cached] {
            let re = exact.execute(&ctx, &dev, mode).unwrap();
            let rs = est.execute(&ctx, &dev, mode).unwrap();
            assert_eq!(rs.result.ptr(), re.result.ptr());
            assert_eq!(rs.result.idx(), re.result.idx());
            assert!(
                rs.result.approx_eq(&re.result, 0.0),
                "values must be bitwise equal"
            );
        }
    }

    #[test]
    fn degenerate_full_sample_reproduces_the_exact_plan_workloads() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let cfg = ReorganizerConfig::default();
        let full = EstimatorConfig {
            samples: ctx.inner_dim().max(ctx.nrows()) + 1,
            tolerance: 0.0,
        };
        let exact = ReorgPlan::build(&ctx, &cfg, &dev);
        let est = ReorgPlan::build_estimated(&ctx, &cfg, &dev, &full);
        assert!(
            !est.build.fallback,
            "full sample is exact, never falls back"
        );
        assert_eq!(est.bins.row_products, exact.bins.row_products);
        assert_eq!(est.limit_plan, exact.limit_plan);
    }

    #[test]
    fn wide_band_falls_back_to_exact_precalc() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let cfg = ReorganizerConfig::default();
        let strict = EstimatorConfig {
            samples: 8,
            tolerance: 0.0,
        };
        let est = ReorgPlan::build_estimated(&ctx, &cfg, &dev, &strict);
        assert!(est.build.fallback);
        assert_eq!(est.method, MethodChoice::Reorganized);
        // Fallback plans carry the exact workloads.
        let exact = ReorgPlan::build(&ctx, &cfg, &dev);
        assert_eq!(est.bins, exact.bins);
        // And charge both the sample and the exact pass.
        assert!(est.build.ops > exact.build.ops);
    }

    #[test]
    fn method_dispatch_swaps_launches_but_not_the_result() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let cfg = ReorganizerConfig::default();
        let base = ReorgPlan::build(&ctx, &cfg, &dev);
        let oracle = base.execute(&ctx, &dev, PlanMode::Cached).unwrap();
        for (method, launches) in [
            (MethodChoice::RowProduct, 2usize),
            (MethodChoice::OuterProduct, 2),
            (MethodChoice::Esc, 6),
            (MethodChoice::Hash, 2),
        ] {
            let mut plan = base.clone();
            plan.method = method;
            // Baseline methods ignore Cold-vs-Cached: no precalc launch.
            let cold = plan.execute(&ctx, &dev, PlanMode::Cold).unwrap();
            let warm = plan.execute(&ctx, &dev, PlanMode::Cached).unwrap();
            assert_eq!(cold.preprocess_ms, 0.0, "{method:?}");
            assert_eq!(cold.profiles.len(), warm.profiles.len());
            if launches == 2 {
                assert_eq!(cold.profiles.len(), 2, "{method:?}");
            } else {
                assert!(cold.profiles.len() >= 3, "{method:?} has sort passes");
            }
            assert_eq!(warm.result.ptr(), oracle.result.ptr());
            assert_eq!(warm.result.idx(), oracle.result.idx());
            assert!(warm.result.approx_eq(&oracle.result, 0.0));
        }
    }

    #[test]
    fn reordered_plans_are_bit_identical_to_the_baseline() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let cfg = ReorganizerConfig::default();
        let baseline = ReorgPlan::build(&ctx, &cfg, &dev);
        assert_eq!(baseline.reorder, ReorderStrategy::None);
        assert!(baseline.permutation.is_none());
        let oracle = baseline.execute(&ctx, &dev, PlanMode::Cached).unwrap();
        for strategy in [
            ReorderStrategy::Degree,
            ReorderStrategy::Rcm,
            ReorderStrategy::Cluster,
            ReorderStrategy::Auto,
        ] {
            let plan = ReorgPlan::build_with_reorder(&ctx, &cfg, &dev, strategy);
            assert_ne!(plan.reorder, ReorderStrategy::Auto, "auto must resolve");
            // The plan still keys on (and validates against) the
            // original operands.
            assert_eq!(plan.signature, ctx.signature());
            for mode in [PlanMode::Cold, PlanMode::Cached] {
                let run = plan.execute(&ctx, &dev, mode).unwrap();
                assert_eq!(run.result.ptr(), oracle.result.ptr(), "{strategy:?}");
                assert_eq!(run.result.idx(), oracle.result.idx(), "{strategy:?}");
                assert!(
                    run.result.approx_eq(&oracle.result, 0.0),
                    "{strategy:?} values must be bitwise equal"
                );
            }
        }
    }

    #[test]
    fn reordered_estimated_plans_are_bit_identical_too() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let cfg = ReorganizerConfig::default();
        let oracle = ReorgPlan::build(&ctx, &cfg, &dev)
            .execute(&ctx, &dev, PlanMode::Cached)
            .unwrap();
        let plan = ReorgPlan::build_estimated_with_reorder(
            &ctx,
            &cfg,
            &dev,
            &EstimatorConfig::default(),
            ReorderStrategy::Degree,
        );
        assert!(plan.build.estimated);
        assert_eq!(plan.reorder, ReorderStrategy::Degree);
        let run = plan.execute(&ctx, &dev, PlanMode::Cached).unwrap();
        assert_eq!(run.result.ptr(), oracle.result.ptr());
        assert_eq!(run.result.idx(), oracle.result.idx());
        assert!(run.result.approx_eq(&oracle.result, 0.0));
    }

    #[test]
    fn reordered_plan_survives_serde_and_replays_the_permutation() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let cfg = ReorganizerConfig::default();
        let plan = ReorgPlan::build_with_reorder(&ctx, &cfg, &dev, ReorderStrategy::Degree);
        assert!(plan.permutation.is_some(), "skewed input must reorder");
        let json = serde_json::to_string(&plan).unwrap();
        let back: ReorgPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        let oracle = ReorgPlan::build(&ctx, &cfg, &dev)
            .execute(&ctx, &dev, PlanMode::Cached)
            .unwrap();
        let run = back.execute(&ctx, &dev, PlanMode::Cached).unwrap();
        assert_eq!(run.result.ptr(), oracle.result.ptr());
        assert_eq!(run.result.idx(), oracle.result.idx());
        assert!(run.result.approx_eq(&oracle.result, 0.0));
    }

    #[test]
    fn reordered_plan_changes_the_merge_block_order_but_not_the_totals() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let cfg = ReorganizerConfig::default();
        let baseline = ReorgPlan::build(&ctx, &cfg, &dev);
        let degree = ReorgPlan::build_with_reorder(&ctx, &cfg, &dev, ReorderStrategy::Degree);
        let base_run = baseline.execute(&ctx, &dev, PlanMode::Cached).unwrap();
        let deg_run = degree.execute(&ctx, &dev, PlanMode::Cached).unwrap();
        // Same simulated work overall...
        assert_eq!(base_run.flops, deg_run.flops);
        assert_eq!(base_run.profiles.len(), deg_run.profiles.len());
        // ...but the merge launch saw a different block order, so the
        // per-phase schedule is genuinely exercised (cycle totals may
        // coincide; the permutation existing is the structural witness).
        assert!(degree.permutation.is_some());
        assert!(!degree.permutation.as_ref().unwrap().is_identity());
    }

    #[test]
    fn plan_is_value_independent() {
        let a = skewed();
        let dev = DeviceConfig::titan_xp();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let plan = ReorgPlan::build(&ctx, &ReorganizerConfig::default(), &dev);
        // Same structure, different values: the plan still applies, and the
        // result reflects the new values.
        let scaled = a.map_values(|v| v * 2.0);
        let scaled_ctx = ProblemContext::new(&scaled, &scaled).unwrap();
        let run = plan.execute(&scaled_ctx, &dev, PlanMode::Cached).unwrap();
        let oracle = br_sparse::ops::spgemm_gustavson(&scaled, &scaled).unwrap();
        assert!(run.result.approx_eq(&oracle, 1e-9));
    }
}
