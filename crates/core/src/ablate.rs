//! Ablation runner for Figure 10: each technique alone, then all three.
//!
//! All variants run on the same [`ProblemContext`] and device; speedups are
//! reported against the outer-product baseline (Figure 10's normalization)
//! and the row-product baseline (Figure 8's).

use br_gpu_sim::device::DeviceConfig;
use br_sparse::{Result, Scalar};
use br_spgemm::context::ProblemContext;
use br_spgemm::pipeline::{run_method, SpgemmMethod};

use crate::config::ReorganizerConfig;
use crate::pass::{BlockReorganizer, ReorganizerRun};

/// Per-dataset ablation outcome.
#[derive(Debug, Clone)]
pub struct AblationReport<T> {
    /// Outer-product baseline time (ms).
    pub outer_ms: f64,
    /// Row-product baseline time (ms).
    pub row_ms: f64,
    /// B-Splitting-only run.
    pub split_only: ReorganizerRun<T>,
    /// B-Gathering-only run.
    pub gather_only: ReorganizerRun<T>,
    /// B-Limiting-only run.
    pub limit_only: ReorganizerRun<T>,
    /// Full Block Reorganizer run.
    pub full: ReorganizerRun<T>,
}

impl<T: Clone> AblationReport<T> {
    /// Speedup of a run versus the outer-product baseline.
    fn speedup_outer(&self, ms: f64) -> f64 {
        if ms <= 0.0 {
            0.0
        } else {
            self.outer_ms / ms
        }
    }

    /// Figure 10 bars: (B-Limiting, B-Splitting, B-Gathering, combined)
    /// speedups over the outer-product baseline.
    pub fn fig10_bars(&self) -> (f64, f64, f64, f64) {
        (
            self.speedup_outer(self.limit_only.total_ms),
            self.speedup_outer(self.split_only.total_ms),
            self.speedup_outer(self.gather_only.total_ms),
            self.speedup_outer(self.full.total_ms),
        )
    }

    /// Figure 8 bar: full-reorganizer speedup over the row-product baseline.
    pub fn speedup_vs_row(&self) -> f64 {
        if self.full.total_ms <= 0.0 {
            0.0
        } else {
            self.row_ms / self.full.total_ms
        }
    }
}

/// Runs the four reorganizer variants plus both baselines.
pub fn ablation<T: Scalar>(
    ctx: &ProblemContext<T>,
    device: &DeviceConfig,
) -> Result<AblationReport<T>> {
    let outer = run_method(ctx, SpgemmMethod::OuterProduct, device)?;
    let row = run_method(ctx, SpgemmMethod::RowProduct, device)?;
    let run_with = |cfg: ReorganizerConfig| BlockReorganizer::new(cfg).multiply_ctx(ctx, device);
    Ok(AblationReport {
        outer_ms: outer.total_ms,
        row_ms: row.total_ms,
        split_only: run_with(ReorganizerConfig::split_only())?,
        gather_only: run_with(ReorganizerConfig::gather_only())?,
        limit_only: run_with(ReorganizerConfig::limit_only())?,
        full: run_with(ReorganizerConfig::default())?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::chung_lu::{chung_lu, ChungLuConfig};

    fn ctx() -> ProblemContext<f64> {
        let a = chung_lu(ChungLuConfig {
            gamma: 2.0,
            ..ChungLuConfig::social(2500, 17_500, 123)
        })
        .to_csr();
        ProblemContext::new(&a, &a).unwrap()
    }

    #[test]
    fn all_variants_produce_identical_results() {
        let ctx = ctx();
        let dev = DeviceConfig::titan_xp();
        let rep = ablation(&ctx, &dev).unwrap();
        assert_eq!(rep.split_only.result, rep.full.result);
        assert_eq!(rep.gather_only.result, rep.full.result);
        assert_eq!(rep.limit_only.result, rep.full.result);
    }

    #[test]
    fn full_reorganizer_beats_outer_baseline_on_skewed_data() {
        let ctx = ctx();
        let dev = DeviceConfig::titan_xp();
        let rep = ablation(&ctx, &dev).unwrap();
        let (_, _, _, combined) = rep.fig10_bars();
        assert!(
            combined > 1.0,
            "combined speedup over outer must exceed 1: {combined}"
        );
    }

    #[test]
    fn single_techniques_help_on_their_target_pathology() {
        let ctx = ctx();
        let dev = DeviceConfig::titan_xp();
        let rep = ablation(&ctx, &dev).unwrap();
        let (limit, split, gather, combined) = rep.fig10_bars();
        // Each lone technique must not be catastrophic, and the
        // combination should be at least as good as the best single one
        // (within a small tolerance — interactions are not perfectly
        // additive, as in the paper).
        for (name, s) in [("limit", limit), ("split", split), ("gather", gather)] {
            assert!(s > 0.5, "{name} speedup collapsed: {s}");
        }
        let best = limit.max(split).max(gather);
        assert!(
            combined > best * 0.9,
            "combined {combined} should approach best single {best}"
        );
    }
}
