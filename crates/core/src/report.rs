//! Workload report: the Figure 4 view of one problem — how the pass binned
//! the column/row pairs and what it plans to do about each bin.

use br_gpu_sim::device::DeviceConfig;
use br_sparse::Scalar;
use br_spgemm::context::ProblemContext;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::classify::Classification;
use crate::config::ReorganizerConfig;
use crate::gather::plan_gathers;
use crate::limit::LimitPlan;
use crate::split::plan_splits;

/// Aggregate view of one pair bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinSummary {
    /// Pairs in the bin.
    pub pairs: usize,
    /// Total intermediate products the bin generates.
    pub products: u64,
    /// Share of all products in `[0, 1]`.
    pub product_share: f64,
}

/// The full pre-execution report of the Block Reorganizer's plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Dominator bin (→ B-Splitting).
    pub dominators: BinSummary,
    /// Normal bin (executed as-is).
    pub normals: BinSummary,
    /// Low-performer bin (→ B-Gathering).
    pub low_performers: BinSummary,
    /// Pairs producing nothing.
    pub empty_pairs: usize,
    /// Dominator classification threshold (products).
    pub threshold: u64,
    /// Pieces the dominators will split into.
    pub split_pieces: usize,
    /// Combined blocks gathering will emit.
    pub gathered_blocks: usize,
    /// Rows that will receive B-Limiting in the merge.
    pub limited_rows: usize,
    /// `nnz(Ĉ)`.
    pub intermediate_nnz: u64,
    /// `nnz(C)`.
    pub output_nnz: usize,
}

impl WorkloadReport {
    /// Builds the report for a problem under a configuration and device.
    pub fn of<T: Scalar>(
        ctx: &ProblemContext<T>,
        config: &ReorganizerConfig,
        device: &DeviceConfig,
    ) -> Self {
        let cls = Classification::of(ctx, config);
        let bin = |pairs: &[usize]| -> BinSummary {
            let products: u64 = pairs.iter().map(|&p| ctx.block_products[p]).sum();
            BinSummary {
                pairs: pairs.len(),
                products,
                product_share: products as f64 / ctx.intermediate_total.max(1) as f64,
            }
        };
        let plans = plan_splits(
            ctx,
            &cls.dominators,
            config.split_policy,
            device,
            cls.threshold,
        );
        let gathers = plan_gathers(ctx, &cls.low_performers, config.gather_block);
        let limits = LimitPlan::of(ctx, config);
        let nonempty = cls.dominators.len() + cls.normals.len() + cls.low_performers.len();
        WorkloadReport {
            dominators: bin(&cls.dominators),
            normals: bin(&cls.normals),
            low_performers: bin(&cls.low_performers),
            empty_pairs: ctx.inner_dim() - nonempty,
            threshold: cls.threshold,
            split_pieces: plans.iter().map(|p| p.pieces.len()).sum(),
            gathered_blocks: gathers.combined.len() + gathers.compacted.len(),
            limited_rows: limits.limited_count(),
            intermediate_nnz: ctx.intermediate_total,
            output_nnz: ctx.output_total,
        }
    }
}

impl fmt::Display for WorkloadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "workload classification (threshold {} products):",
            self.threshold
        )?;
        let row = |f: &mut fmt::Formatter<'_>, name: &str, b: &BinSummary| {
            writeln!(
                f,
                "  {:<15} {:>9} pairs  {:>13} products ({:>5.1}%)",
                name,
                b.pairs,
                b.products,
                b.product_share * 100.0
            )
        };
        row(f, "dominators", &self.dominators)?;
        row(f, "normal", &self.normals)?;
        row(f, "low performers", &self.low_performers)?;
        writeln!(f, "  {:<15} {:>9} pairs", "empty", self.empty_pairs)?;
        writeln!(
            f,
            "plan: {} split pieces | {} gathered/compacted blocks | {} limited merge rows",
            self.split_pieces, self.gathered_blocks, self.limited_rows
        )?;
        write!(
            f,
            "volume: nnz(C-hat) = {}, nnz(C) = {} (compression {:.2}x)",
            self.intermediate_nnz,
            self.output_nnz,
            self.intermediate_nnz as f64 / self.output_nnz.max(1) as f64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::chung_lu::{chung_lu, ChungLuConfig};

    fn report() -> WorkloadReport {
        let a = chung_lu(ChungLuConfig {
            gamma: 2.0,
            ..ChungLuConfig::social(2000, 14_000, 21)
        })
        .to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        WorkloadReport::of(
            &ctx,
            &ReorganizerConfig::default(),
            &DeviceConfig::titan_xp(),
        )
    }

    #[test]
    fn bins_partition_products_exactly() {
        let r = report();
        assert_eq!(
            r.dominators.products + r.normals.products + r.low_performers.products,
            r.intermediate_nnz
        );
        let share =
            r.dominators.product_share + r.normals.product_share + r.low_performers.product_share;
        assert!((share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dominators_carry_outsized_share() {
        let r = report();
        // Few pairs, large share — the power-law signature the pass exploits.
        assert!(r.dominators.pairs < r.low_performers.pairs / 10);
        assert!(r.dominators.product_share > 0.2);
    }

    #[test]
    fn split_pieces_exceed_dominator_count() {
        let r = report();
        assert!(r.split_pieces >= r.dominators.pairs * 2);
    }

    #[test]
    fn display_is_complete_and_humane() {
        let r = report();
        let s = r.to_string();
        assert!(s.contains("dominators"));
        assert!(s.contains("low performers"));
        assert!(s.contains("compression"));
        assert!(s.lines().count() >= 6);
    }
}
