//! Precalculation & workload categorization (paper Section IV-B).
//!
//! Every outer-product pair is placed in one of three bins based on its
//! precalculated workload:
//!
//! * **Dominator** — workload above `α ×` the mean pair workload; will be
//!   B-Split.
//! * **Low performer** — fewer than warp-size (32) effective threads; will
//!   be B-Gathered.
//! * **Normal** — everything else; executed as-is.
//!
//! Classification itself runs as a cheap GPU kernel (a scan over the
//! pointer arrays); [`precalc_launch`] emits its trace so the overhead is
//! charged to the pass, as in the paper's measurements.

use br_gpu_sim::trace::{KernelLaunch, TraceBuilder};
use br_sparse::Scalar;
use br_spgemm::context::ProblemContext;
use br_spgemm::workspace::{Workspace, PTR_BYTES};
use serde::{Deserialize, Serialize};

use crate::config::ReorganizerConfig;

/// The three workload bins of Section IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Overloaded pair — handled by B-Splitting.
    Dominator,
    /// Ordinary pair.
    Normal,
    /// Underloaded pair (< 32 effective threads) — handled by B-Gathering.
    LowPerformer,
    /// Pair with zero products (skipped entirely).
    Empty,
}

/// Result of precalculation + categorization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    /// Class of every inner-dimension pair.
    pub classes: Vec<WorkloadClass>,
    /// Dominator pair indices ("Dominator bin" of Figure 4).
    pub dominators: Vec<usize>,
    /// Low-performer pair indices ("Low performer bin").
    pub low_performers: Vec<usize>,
    /// Normal pair indices.
    pub normals: Vec<usize>,
    /// The dominator workload threshold used.
    pub threshold: u64,
}

impl Classification {
    /// Categorizes all pairs of a problem under the given config.
    pub fn of<T: Scalar>(ctx: &ProblemContext<T>, config: &ReorganizerConfig) -> Self {
        let nonempty = ctx.block_products.iter().filter(|&&p| p > 0).count().max(1);
        let mean = ctx.intermediate_total as f64 / nonempty as f64;
        let threshold = (config.alpha * mean).ceil().max(1.0) as u64;

        let mut classes = Vec::with_capacity(ctx.inner_dim());
        let mut dominators = Vec::new();
        let mut low_performers = Vec::new();
        let mut normals = Vec::new();
        for i in 0..ctx.inner_dim() {
            let products = ctx.block_products[i];
            let class = if products == 0 {
                WorkloadClass::Empty
            } else if products > threshold {
                dominators.push(i);
                WorkloadClass::Dominator
            } else if ctx.pair_effective_threads(i) < 32 {
                low_performers.push(i);
                WorkloadClass::LowPerformer
            } else {
                normals.push(i);
                WorkloadClass::Normal
            };
            classes.push(class);
        }
        Classification {
            classes,
            dominators,
            low_performers,
            normals,
            threshold,
        }
    }

    /// Share of non-empty pairs classified as dominators.
    pub fn dominator_fraction(&self) -> f64 {
        let nonempty = self.dominators.len() + self.low_performers.len() + self.normals.len();
        if nonempty == 0 {
            0.0
        } else {
            self.dominators.len() as f64 / nonempty as f64
        }
    }
}

/// Data-driven α selection (Section IV-B: "the criteria for classification
/// can be changed by adjusting the value of α based on the target sparse
/// network characteristics. Highly skewed networks can have lower α values,
/// but social networks with several medium-size hub-nodes should have high
/// α values to avoid selecting too many dominator pairs").
///
/// The Gini coefficient of the pair workloads measures exactly that
/// distinction: extreme-hub networks (Gini → 1) can afford an aggressive
/// (low) α because even a low threshold catches only the few true hubs;
/// medium-hub networks need a stricter cut.
pub fn auto_alpha<T: Scalar>(ctx: &ProblemContext<T>) -> f64 {
    let workloads: Vec<usize> = ctx
        .block_products
        .iter()
        .filter(|&&p| p > 0)
        .map(|&p| p as usize)
        .collect();
    let gini = br_sparse::stats::DegreeStats::from_degrees(&workloads).gini;
    if gini > 0.85 {
        8.0
    } else if gini > 0.6 {
        16.0
    } else {
        32.0
    }
}

/// Emits the precalculation kernel trace: block-wise and row-wise nnz via
/// scans of the pointer arrays, plus the prefix sums sizing `Ĉ`.
pub fn precalc_launch<T: Scalar>(ctx: &ProblemContext<T>, ws: &Workspace) -> KernelLaunch {
    let pairs = ctx.inner_dim() as u64;
    let rows = ctx.nrows() as u64;
    let per_block = 1024u64;
    let mut blocks = Vec::new();
    let mut i = 0u64;
    while i < pairs.max(1) {
        let len = per_block.min(pairs.saturating_sub(i)).max(1);
        blocks.push(
            TraceBuilder::new(256, len.min(256) as u32)
                // degree lookup + multiply + prefix-sum step per pair, and
                // the row-wise accumulation pass.
                .compute(3 * len.div_ceil(256))
                .read(ws.a_ptr, 0, (rows + 1) * PTR_BYTES)
                .read(ws.b_ptr, i * PTR_BYTES, (len + 1) * PTR_BYTES)
                .barriers(2)
                .build(),
        );
        i += len;
    }
    KernelLaunch::new("reorganizer-precalc", blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::chung_lu::{chung_lu, ChungLuConfig};
    use br_sparse::CsrMatrix;

    fn skewed_ctx() -> ProblemContext<f64> {
        let a = chung_lu(ChungLuConfig {
            gamma: 2.0,
            ..ChungLuConfig::social(2000, 16_000, 5)
        })
        .to_csr();
        ProblemContext::new(&a, &a).unwrap()
    }

    #[test]
    fn classes_partition_all_pairs() {
        let ctx = skewed_ctx();
        let c = Classification::of(&ctx, &ReorganizerConfig::default());
        assert_eq!(c.classes.len(), ctx.inner_dim());
        let empty = c
            .classes
            .iter()
            .filter(|&&x| x == WorkloadClass::Empty)
            .count();
        assert_eq!(
            c.dominators.len() + c.low_performers.len() + c.normals.len() + empty,
            ctx.inner_dim()
        );
    }

    #[test]
    fn skewed_network_has_dominators_and_many_low_performers() {
        let ctx = skewed_ctx();
        let c = Classification::of(&ctx, &ReorganizerConfig::default());
        assert!(
            !c.dominators.is_empty(),
            "gamma=2 hubs must produce dominators"
        );
        assert!(
            c.low_performers.len() > c.dominators.len() * 10,
            "the tail should dwarf the hubs: {} vs {}",
            c.low_performers.len(),
            c.dominators.len()
        );
        // The paper's youtube walkthrough: dominator count is tiny
        // relative to all pairs.
        assert!(c.dominator_fraction() < 0.05);
    }

    #[test]
    fn dominators_exceed_threshold_and_others_dont() {
        let ctx = skewed_ctx();
        let c = Classification::of(&ctx, &ReorganizerConfig::default());
        for &d in &c.dominators {
            assert!(ctx.block_products[d] > c.threshold);
        }
        for &n in &c.normals {
            assert!(ctx.block_products[n] <= c.threshold);
        }
    }

    #[test]
    fn low_performers_have_under_warp_threads() {
        let ctx = skewed_ctx();
        let c = Classification::of(&ctx, &ReorganizerConfig::default());
        for &lp in &c.low_performers {
            assert!(ctx.pair_effective_threads(lp) < 32);
            assert!(ctx.block_products[lp] > 0);
        }
    }

    #[test]
    fn higher_alpha_selects_fewer_dominators() {
        let ctx = skewed_ctx();
        let strict = Classification::of(
            &ctx,
            &ReorganizerConfig {
                alpha: 64.0,
                ..Default::default()
            },
        );
        let loose = Classification::of(
            &ctx,
            &ReorganizerConfig {
                alpha: 4.0,
                ..Default::default()
            },
        );
        assert!(strict.dominators.len() <= loose.dominators.len());
        assert!(!loose.dominators.is_empty());
    }

    #[test]
    fn identity_matrix_has_no_dominators() {
        let i = CsrMatrix::<f64>::identity(256);
        let ctx = ProblemContext::new(&i, &i).unwrap();
        let c = Classification::of(&ctx, &ReorganizerConfig::default());
        assert!(c.dominators.is_empty());
        // every pair has exactly 1 effective thread → all low performers
        assert_eq!(c.low_performers.len(), 256);
    }

    #[test]
    fn auto_alpha_is_aggressive_on_extreme_hubs_strict_on_regular() {
        let skewed = skewed_ctx();
        let alpha_skewed = auto_alpha(&skewed);
        let regular = {
            let m = br_datasets::mesh::banded(2000, 64, 8, 3).to_csr();
            ProblemContext::new(&m, &m).unwrap()
        };
        let alpha_regular = auto_alpha(&regular);
        assert!(
            alpha_skewed < alpha_regular,
            "hub-heavy nets get lower alpha: {alpha_skewed} vs {alpha_regular}"
        );
        // Auto alpha plugs straight into the config and stays correct.
        let cfg = ReorganizerConfig {
            alpha: alpha_skewed,
            ..Default::default()
        };
        let c = Classification::of(&skewed, &cfg);
        assert!(!c.dominators.is_empty());
    }

    #[test]
    fn precalc_trace_covers_pointer_arrays() {
        let ctx = skewed_ctx();
        let ws = Workspace::for_context(&ctx);
        let k = precalc_launch(&ctx, &ws);
        assert!(!k.blocks.is_empty());
        assert!(k.blocks.iter().all(|b| b.bytes_read() > 0));
    }
}
