//! B-Gathering (paper Section IV-C.2, Figure 6).
//!
//! Low-performer blocks are first *compacted* into micro-blocks (exactly as
//! many threads as effective work), binned by effective-thread count into
//! power-of-two ranges, and then `32/2ⁿ` micro-blocks of bin `n` are packed
//! into one warp-sized combined block with multiple partitions. Blocks in
//! the top bin (17–32 effective threads) are *not* gathered, "to avoid
//! serialization".
//!
//! The combined block's lanes belong to different pairs whose per-thread
//! loop counts differ, so a small intra-warp imbalance (max/mean of member
//! column sizes) is part of the honest cost.

use br_gpu_sim::trace::{BlockTrace, TraceBuilder};
use br_sparse::Scalar;
use br_spgemm::context::ProblemContext;
use br_spgemm::workspace::{Workspace, ELEM_BYTES};
use serde::{Deserialize, Serialize};

/// One gathered (combined) block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinedBlock {
    /// Original pair indices packed into this block.
    pub members: Vec<usize>,
    /// Gathering factor `32/2ⁿ` of the source bin.
    pub factor: u32,
}

/// The full gather plan.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GatherPlan {
    /// Pair indices per bin: bin `n` holds effective threads in
    /// `(2ⁿ⁻¹, 2ⁿ]` (bin 0 holds exactly 1).
    pub bins: [Vec<usize>; 6],
    /// Combined blocks (bins 0–4) in launch order.
    pub combined: Vec<CombinedBlock>,
    /// Pairs left as-is but compacted to a single warp (bin 5: 17–32
    /// effective threads).
    pub compacted: Vec<usize>,
}

/// Bin index of an effective-thread count in `1..=32`.
fn bin_of(eff: usize) -> usize {
    debug_assert!((1..=32).contains(&eff));
    // 1 → 0, 2 → 1, 3..4 → 2, 5..8 → 3, 9..16 → 4, 17..32 → 5
    (usize::BITS - (eff - 1).leading_zeros()) as usize
}

/// Plans gathering for the given low-performer pairs.
pub fn plan_gathers<T: Scalar>(
    ctx: &ProblemContext<T>,
    low_performers: &[usize],
    gather_block: u32,
) -> GatherPlan {
    let mut plan = GatherPlan::default();
    for &pair in low_performers {
        let eff = ctx.pair_effective_threads(pair);
        debug_assert!((1..32).contains(&eff), "low performers have 1..32 threads");
        plan.bins[bin_of(eff)].push(pair);
    }
    for (n, bin) in plan.bins.iter().enumerate() {
        if bin.is_empty() {
            continue;
        }
        if n == 5 {
            // 17–32 effective threads: compaction only, no gathering.
            plan.compacted.extend_from_slice(bin);
            continue;
        }
        // Micro-blocks of ≤ 2ⁿ threads; 32/2ⁿ of them fill one warp.
        let factor = (gather_block >> n).max(1);
        for chunk in bin.chunks(factor as usize) {
            plan.combined.push(CombinedBlock {
                members: chunk.to_vec(),
                factor,
            });
        }
    }
    plan
}

/// Emits the trace of one combined block.
pub fn combined_block_trace<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
    block: &CombinedBlock,
    chat_offsets: &[u64],
    gather_block: u32,
    row_major_chat: bool,
) -> BlockTrace {
    let effective: u64 = block
        .members
        .iter()
        .map(|&p| ctx.pair_effective_threads(p) as u64)
        .sum();
    let works: Vec<u64> = block
        .members
        .iter()
        .map(|&p| ctx.pair_thread_work(p) as u64)
        .collect();
    let max_work = works.iter().copied().max().unwrap_or(0);
    let mean_work = works.iter().sum::<u64>() as f64 / works.len().max(1) as f64;
    let imbalance = if mean_work > 0.0 {
        (max_work as f64 / mean_work).max(1.0)
    } else {
        1.0
    };

    let mut tb = TraceBuilder::new(gather_block, effective.min(gather_block as u64) as u32)
        .compute(max_work) // lock-step: the warp runs as long as its slowest partition
        .lane_imbalance(imbalance)
        .barriers(1);
    for &pair in &block.members {
        let nnz_a = ctx.pair_thread_work(pair) as u64;
        let nnz_b = ctx.pair_effective_threads(pair) as u64;
        tb = tb
            .read(
                ws.a_csc_data,
                ws.a_col_offset(ctx, pair),
                nnz_a * ELEM_BYTES,
            )
            .read(ws.b_data, ws.b_row_offset(ctx, pair), nnz_b * ELEM_BYTES);
        let products = nnz_a * nnz_b;
        tb = if row_major_chat {
            let chunk = (nnz_b * ELEM_BYTES).min(u32::MAX as u64) as u32;
            tb.scatter_write(
                ws.chat,
                0,
                ctx.intermediate_total.max(1) * ELEM_BYTES,
                nnz_a,
                chunk,
            )
        } else {
            tb.write(
                ws.chat,
                chat_offsets[pair] * ELEM_BYTES,
                products * ELEM_BYTES,
            )
        };
    }
    tb.build()
}

/// Emits the trace of a compacted-but-not-gathered block (bin 5): the same
/// work as the original low performer, launched with one warp instead of a
/// full-size block.
pub fn compacted_block_trace<T: Scalar>(
    ctx: &ProblemContext<T>,
    ws: &Workspace,
    pair: usize,
    chat_offsets: &[u64],
    gather_block: u32,
    row_major_chat: bool,
) -> BlockTrace {
    let nnz_a = ctx.pair_thread_work(pair) as u64;
    let nnz_b = ctx.pair_effective_threads(pair) as u64;
    let products = nnz_a * nnz_b;
    let mut tb = TraceBuilder::new(gather_block, nnz_b.min(gather_block as u64) as u32)
        .compute(nnz_a)
        .read(
            ws.a_csc_data,
            ws.a_col_offset(ctx, pair),
            nnz_a * ELEM_BYTES,
        )
        .read(ws.b_data, ws.b_row_offset(ctx, pair), nnz_b * ELEM_BYTES)
        .barriers(1);
    tb = if row_major_chat {
        let chunk = (nnz_b * ELEM_BYTES).min(u32::MAX as u64) as u32;
        tb.scatter_write(
            ws.chat,
            0,
            ctx.intermediate_total.max(1) * ELEM_BYTES,
            nnz_a,
            chunk,
        )
    } else {
        tb.write(
            ws.chat,
            chat_offsets[pair] * ELEM_BYTES,
            products * ELEM_BYTES,
        )
    };
    tb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classification;
    use crate::config::ReorganizerConfig;
    use br_datasets::chung_lu::{chung_lu, ChungLuConfig};

    fn ctx() -> ProblemContext<f64> {
        let a = chung_lu(ChungLuConfig {
            gamma: 2.1,
            ..ChungLuConfig::social(1500, 9_000, 3)
        })
        .to_csr();
        ProblemContext::new(&a, &a).unwrap()
    }

    #[test]
    fn bin_boundaries_are_power_of_two_ranges() {
        assert_eq!(bin_of(1), 0);
        assert_eq!(bin_of(2), 1);
        assert_eq!(bin_of(3), 2);
        assert_eq!(bin_of(4), 2);
        assert_eq!(bin_of(5), 3);
        assert_eq!(bin_of(8), 3);
        assert_eq!(bin_of(9), 4);
        assert_eq!(bin_of(16), 4);
        assert_eq!(bin_of(17), 5);
        assert_eq!(bin_of(32), 5);
    }

    #[test]
    fn gathering_factor_is_32_over_bin_size() {
        let ctx = ctx();
        let cls = Classification::of(&ctx, &ReorganizerConfig::default());
        let plan = plan_gathers(&ctx, &cls.low_performers, 32);
        for c in &plan.combined {
            // factor matches the bin all members came from
            let n = bin_of(ctx.pair_effective_threads(c.members[0]));
            assert_eq!(c.factor, 32 >> n);
            assert!(c.members.len() <= c.factor as usize);
            // all members share a bin
            assert!(c
                .members
                .iter()
                .all(|&m| bin_of(ctx.pair_effective_threads(m)) == n));
        }
    }

    #[test]
    fn every_low_performer_lands_exactly_once() {
        let ctx = ctx();
        let cls = Classification::of(&ctx, &ReorganizerConfig::default());
        let plan = plan_gathers(&ctx, &cls.low_performers, 32);
        let mut seen: Vec<usize> = plan
            .combined
            .iter()
            .flat_map(|c| c.members.iter().copied())
            .chain(plan.compacted.iter().copied())
            .collect();
        seen.sort_unstable();
        let mut expect = cls.low_performers.clone();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn combined_block_is_warp_sized_and_mostly_effective() {
        let ctx = ctx();
        let cls = Classification::of(&ctx, &ReorganizerConfig::default());
        let plan = plan_gathers(&ctx, &cls.low_performers, 32);
        let ws = Workspace::for_context(&ctx);
        let offsets = ctx.chat_block_offsets();
        for c in plan.combined.iter().take(50) {
            let t = combined_block_trace(&ctx, &ws, c, &offsets, 32, false);
            assert_eq!(t.threads, 32);
            assert!(t.effective_threads >= 1);
            // a full combined block approaches warp-full effectiveness
            if c.members.len() == c.factor as usize {
                assert!(
                    t.effective_ratio() > 0.5,
                    "full block should be mostly effective: {}",
                    t.effective_ratio()
                );
            }
        }
    }

    #[test]
    fn combined_block_conserves_all_member_products() {
        let ctx = ctx();
        let cls = Classification::of(&ctx, &ReorganizerConfig::default());
        let plan = plan_gathers(&ctx, &cls.low_performers, 32);
        let ws = Workspace::for_context(&ctx);
        let offsets = ctx.chat_block_offsets();
        let c = plan.combined.first().expect("at least one combined block");
        let t = combined_block_trace(&ctx, &ws, c, &offsets, 32, false);
        let expect: u64 = c
            .members
            .iter()
            .map(|&p| ctx.block_products[p] * ELEM_BYTES)
            .sum();
        assert_eq!(t.bytes_written(), expect);
    }

    #[test]
    fn compute_time_is_slowest_member() {
        let ctx = ctx();
        let cls = Classification::of(&ctx, &ReorganizerConfig::default());
        let plan = plan_gathers(&ctx, &cls.low_performers, 32);
        let ws = Workspace::for_context(&ctx);
        let offsets = ctx.chat_block_offsets();
        for c in plan.combined.iter().take(20) {
            let t = combined_block_trace(&ctx, &ws, c, &offsets, 32, false);
            let max_work = c
                .members
                .iter()
                .map(|&p| ctx.pair_thread_work(p) as u64)
                .max()
                .unwrap();
            assert_eq!(t.compute_per_thread, max_work);
        }
    }
}
