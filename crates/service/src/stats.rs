//! Aggregate statistics for one service run.

use crate::cache::CacheStats;
use crate::job::JobOutcome;

/// Utilization of one worker (one simulated device).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Device the worker simulates.
    pub device: String,
    /// Jobs the worker completed.
    pub jobs: usize,
    /// Wall-clock ms the worker spent executing jobs.
    pub busy_ms: f64,
    /// `busy_ms / wall_ms` of the whole run, in `[0, 1]`.
    pub utilization: f64,
}

/// Everything `blockreorg-cli batch` prints after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Jobs that completed successfully.
    pub jobs: usize,
    /// Jobs that failed.
    pub failures: usize,
    /// Wall-clock duration of the batch, ms.
    pub wall_ms: f64,
    /// Plan-cache counters at the end of the run.
    pub cache: CacheStats,
    /// Highest queue depth observed.
    pub max_queue_depth: usize,
    /// Mean simulated end-to-end latency across all jobs, ms.
    pub mean_total_ms: f64,
    /// Mean simulated latency of cache-miss (cold) jobs, ms.
    pub mean_cold_ms: f64,
    /// Mean simulated latency of cache-hit (warm) jobs, ms.
    pub mean_warm_ms: f64,
    /// Summed simulated precalculation-kernel time, ms.
    pub precalc_ms: f64,
    /// Summed simulated expansion-kernel time, ms.
    pub expansion_ms: f64,
    /// Summed simulated merge-kernel time, ms.
    pub merge_ms: f64,
    /// Summed host-side preprocessing charged to jobs, ms.
    pub preprocess_ms: f64,
    /// Mean wall-clock queue wait, ms.
    pub mean_queue_ms: f64,
    /// Per-worker utilization.
    pub workers: Vec<WorkerStats>,
}

impl ServiceStats {
    /// Builds the report from completed outcomes and run-level counters.
    pub fn from_outcomes(
        outcomes: &[JobOutcome],
        failures: usize,
        wall_ms: f64,
        cache: CacheStats,
        max_queue_depth: usize,
        workers: Vec<WorkerStats>,
    ) -> Self {
        let mean = |values: &[f64]| {
            if values.is_empty() {
                0.0
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            }
        };
        let totals: Vec<f64> = outcomes.iter().map(|o| o.total_ms).collect();
        let cold: Vec<f64> = outcomes
            .iter()
            .filter(|o| !o.cache_hit)
            .map(|o| o.total_ms)
            .collect();
        let warm: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.cache_hit)
            .map(|o| o.total_ms)
            .collect();
        let queue: Vec<f64> = outcomes.iter().map(|o| o.queue_ms).collect();
        ServiceStats {
            jobs: outcomes.len(),
            failures,
            wall_ms,
            cache,
            max_queue_depth,
            mean_total_ms: mean(&totals),
            mean_cold_ms: mean(&cold),
            mean_warm_ms: mean(&warm),
            precalc_ms: outcomes.iter().map(|o| o.precalc_ms).sum(),
            expansion_ms: outcomes.iter().map(|o| o.expansion_ms).sum(),
            merge_ms: outcomes.iter().map(|o| o.merge_ms).sum(),
            preprocess_ms: outcomes.iter().map(|o| o.preprocess_ms).sum(),
            mean_queue_ms: mean(&queue),
            workers,
        }
    }
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batch: {} jobs ({} failed) in {:.2} ms wall",
            self.jobs, self.failures, self.wall_ms
        )?;
        writeln!(
            f,
            "cache: {} hits / {} misses ({:.1}% hit rate), {} evictions, {}/{} entries",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.evictions,
            self.cache.entries,
            self.cache.capacity
        )?;
        writeln!(
            f,
            "latency (simulated): mean {:.4} ms  cold {:.4} ms  warm {:.4} ms",
            self.mean_total_ms, self.mean_cold_ms, self.mean_warm_ms
        )?;
        writeln!(
            f,
            "phases (summed): precalc {:.4} ms  expansion {:.4} ms  merge {:.4} ms  host preprocess {:.4} ms",
            self.precalc_ms, self.expansion_ms, self.merge_ms, self.preprocess_ms
        )?;
        writeln!(
            f,
            "queue: max depth {}, mean wait {:.2} ms",
            self.max_queue_depth, self.mean_queue_ms
        )?;
        for w in &self.workers {
            writeln!(
                f,
                "worker {} ({}): {} jobs, busy {:.2} ms, utilization {:.1}%",
                w.worker,
                w.device,
                w.jobs,
                w.busy_ms,
                w.utilization * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use block_reorganizer::pass::ReorgStats;
    use br_sparse::CsrMatrix;

    fn outcome(hit: bool, total: f64, queue: f64) -> JobOutcome {
        JobOutcome {
            id: 0,
            label: "t".into(),
            worker: 0,
            device: "Titan Xp".into(),
            cache_hit: hit,
            total_ms: total,
            precalc_ms: if hit { 0.0 } else { 1.0 },
            expansion_ms: 2.0,
            merge_ms: 3.0,
            preprocess_ms: if hit { 0.0 } else { 0.5 },
            queue_ms: queue,
            host_ms: 1.0,
            gflops: 1.0,
            nnz_c: 0,
            stats: ReorgStats::default(),
            result: CsrMatrix::<f64>::zeros(1, 1),
        }
    }

    #[test]
    fn aggregates_cold_and_warm_separately() {
        let outcomes = vec![outcome(false, 10.0, 1.0), outcome(true, 4.0, 3.0)];
        let stats = ServiceStats::from_outcomes(
            &outcomes,
            1,
            100.0,
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                entries: 1,
                capacity: 4,
            },
            2,
            vec![],
        );
        assert_eq!(stats.jobs, 2);
        assert_eq!(stats.failures, 1);
        assert!((stats.mean_total_ms - 7.0).abs() < 1e-12);
        assert!((stats.mean_cold_ms - 10.0).abs() < 1e-12);
        assert!((stats.mean_warm_ms - 4.0).abs() < 1e-12);
        assert!((stats.precalc_ms - 1.0).abs() < 1e-12);
        assert!((stats.preprocess_ms - 0.5).abs() < 1e-12);
        assert!((stats.mean_queue_ms - 2.0).abs() < 1e-12);
        let text = stats.to_string();
        assert!(text.contains("hit rate"), "{text}");
        assert!(text.contains("max depth 2"), "{text}");
    }

    #[test]
    fn empty_run_does_not_divide_by_zero() {
        let stats = ServiceStats::from_outcomes(&[], 0, 0.0, CacheStats::default(), 0, vec![]);
        assert_eq!(stats.mean_total_ms, 0.0);
        assert_eq!(stats.mean_cold_ms, 0.0);
        assert_eq!(stats.mean_warm_ms, 0.0);
    }

    #[test]
    fn empty_outcomes_yield_finite_zero_means_and_nan_free_output() {
        // Zero jobs must produce 0.0 means (not NaN from 0/0), so the
        // rendered report and any JSON/exposition built from these numbers
        // stays parseable.
        let stats = ServiceStats::from_outcomes(&[], 0, 0.0, CacheStats::default(), 0, vec![]);
        for v in [
            stats.mean_total_ms,
            stats.mean_cold_ms,
            stats.mean_warm_ms,
            stats.mean_queue_ms,
            stats.precalc_ms,
            stats.expansion_ms,
            stats.merge_ms,
            stats.preprocess_ms,
            stats.cache.hit_rate(),
        ] {
            assert!(v.is_finite(), "must be finite, got {v}");
            assert_eq!(v, 0.0);
        }
        let text = stats.to_string();
        assert!(!text.contains("NaN"), "{text}");
        assert!(!text.contains("inf"), "{text}");
    }

    #[test]
    fn zero_jobs_with_failures_still_reports_them() {
        // Every submitted job failed: no outcomes, but the failure count
        // and cache counters must survive into the report.
        let cache = CacheStats {
            hits: 0,
            misses: 3,
            evictions: 0,
            entries: 0,
            capacity: 4,
        };
        let stats = ServiceStats::from_outcomes(&[], 3, 12.0, cache, 3, vec![]);
        assert_eq!(stats.jobs, 0);
        assert_eq!(stats.failures, 3);
        assert_eq!(stats.cache.misses, 3);
        assert_eq!(stats.cache.hit_rate(), 0.0);
        assert_eq!(stats.mean_queue_ms, 0.0);
        assert_eq!(stats.precalc_ms, 0.0);
        let text = stats.to_string();
        assert!(text.contains("0 jobs (3 failed)"), "{text}");
    }

    #[test]
    fn single_worker_owns_every_job() {
        let outcomes = vec![
            outcome(false, 6.0, 0.5),
            outcome(true, 2.0, 1.5),
            outcome(true, 2.0, 2.5),
        ];
        let worker = WorkerStats {
            worker: 0,
            device: "Titan Xp".into(),
            jobs: outcomes.len(),
            busy_ms: 10.0,
            utilization: 0.5,
        };
        let stats = ServiceStats::from_outcomes(
            &outcomes,
            0,
            20.0,
            CacheStats {
                hits: 2,
                misses: 1,
                evictions: 0,
                entries: 1,
                capacity: 4,
            },
            // With one worker the queue backs up to every pending job.
            outcomes.len(),
            vec![worker],
        );
        assert_eq!(stats.workers.len(), 1);
        assert_eq!(stats.workers[0].jobs, stats.jobs);
        assert_eq!(stats.max_queue_depth, 3);
        assert!((stats.mean_queue_ms - 1.5).abs() < 1e-12);
        assert!((stats.mean_cold_ms - 6.0).abs() < 1e-12);
        assert!((stats.mean_warm_ms - 2.0).abs() < 1e-12);
        let text = stats.to_string();
        assert!(text.contains("worker 0"), "{text}");
        assert!(text.contains("utilization 50.0%"), "{text}");
    }

    #[test]
    fn all_cold_run_has_no_warm_mean() {
        // Distinct matrices only: every lookup misses, so the warm-job
        // mean must stay 0 rather than going NaN or sampling cold jobs.
        let outcomes = vec![outcome(false, 8.0, 0.0), outcome(false, 4.0, 0.0)];
        let stats = ServiceStats::from_outcomes(
            &outcomes,
            0,
            50.0,
            CacheStats {
                hits: 0,
                misses: 2,
                evictions: 0,
                entries: 2,
                capacity: 4,
            },
            1,
            vec![],
        );
        assert!((stats.mean_total_ms - 6.0).abs() < 1e-12);
        assert!((stats.mean_cold_ms - 6.0).abs() < 1e-12);
        assert_eq!(stats.mean_warm_ms, 0.0, "no warm jobs → zero, not NaN");
        assert_eq!(stats.cache.hit_rate(), 0.0);
        // Per-phase sums cover all (cold) jobs.
        assert!((stats.precalc_ms - 2.0).abs() < 1e-12);
        assert!((stats.preprocess_ms - 1.0).abs() < 1e-12);
    }
}
