//! # br-service — a concurrent spGEMM job service with plan reuse
//!
//! The Block Reorganizer pays a preprocessing cost on every multiplication:
//! workload precalculation, dominator/low-performer classification, and the
//! B-Splitting/B-Gathering index rewrites (paper Sections IV-B/C). In the
//! large-sparse-network workloads the paper targets, the *same* matrix is
//! multiplied over and over (`A·A`, iterative link analysis) — the
//! amortization opportunity that estimation-based systems such as OCEAN
//! (arXiv:2604.19004) and reordering-based SpGEMM (arXiv:2507.21253)
//! exploit by separating analysis from execution.
//!
//! This crate is the serving layer that cashes that opportunity in:
//!
//! * [`queue::JobQueue`] — a blocking MPMC queue feeding a pool of workers,
//!   one simulated device ([`br_gpu_sim::sim::GpuSimulator`]) per worker.
//! * [`cache::PlanCache`] — an LRU cache of
//!   [`block_reorganizer::plan::ReorgPlan`] artifacts keyed by the
//!   operands' sparsity signature (dims, nnz, pointer/index hash), the
//!   reorganizer configuration, and the device. Hits skip precalculation
//!   and the host-side B-Splitting cost entirely.
//! * [`service::SpgemmService`] — submission API, worker lifecycle, and
//!   result collection.
//! * [`stats::ServiceStats`] — per-phase latency, queue depth, cache hit
//!   rate, and per-device utilization for one service run.
//! * [`job`] — job descriptions, plus the job-file format consumed by
//!   `blockreorg-cli batch`.
//!
//! Observability: every service (and its plan cache) registers its
//! instruments — job lifecycle spans (`job/submit`, `job`, `job/plan`,
//! `job/execute`), queue gauges, and cache hit/miss/eviction/single-flight
//! counters — in a [`br_obs::Registry`]. By default each service gets a
//! private registry; pass one via
//! [`service::ServiceConfig::with_registry`] (the CLI uses
//! [`br_obs::global`]) to export them. All queue/cache locks go through
//! [`br_obs::lock_recover`], so a panicking worker can never poison the
//! service into a deadlock.
//!
//! Everything is std-only (threads + mutex/condvar); the crate adds no
//! runtime dependencies beyond the workspace.
//!
//! ```
//! use br_service::prelude::*;
//! use br_datasets::rmat::{rmat, RmatConfig};
//! use std::sync::Arc;
//!
//! let a = Arc::new(rmat(RmatConfig::snap_like(8, 6, 7)).to_csr());
//! let jobs: Vec<JobRequest> = (0..4)
//!     .map(|id| JobRequest::square(id, a.clone()))
//!     .collect();
//! let batch = SpgemmService::run_batch(ServiceConfig::default(), jobs);
//! assert_eq!(batch.outcomes.len(), 4);
//! assert!(batch.stats.cache.hits >= 3, "repeats reuse the plan");
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod chain;
pub mod job;
pub mod queue;
pub mod service;
pub mod stats;

/// Convenient glob-import surface for the CLI and tests.
pub mod prelude {
    pub use crate::cache::{CacheStats, PlanCache, PlanKey};
    pub use crate::chain::{
        register_chain_instruments, ChainInstruments, ChainOutcome, ChainRequest, StepOutcome,
    };
    pub use crate::job::{
        expand_jobs, expand_submissions, parse_job_file, JobError, JobOutcome, JobRequest, JobSpec,
        MatrixSource, Submissions,
    };
    pub use crate::queue::{JobQueue, PushError};
    pub use crate::service::{
        BatchOutcome, ChainSubmitError, ServiceConfig, SpgemmService, SubmitError,
    };
    pub use crate::stats::{ServiceStats, WorkerStats};
}

pub use cache::{CacheStats, PlanCache, PlanKey};
pub use chain::{
    register_chain_instruments, ChainInstruments, ChainOutcome, ChainRequest, StepOutcome,
};
pub use job::{JobError, JobOutcome, JobRequest};
pub use queue::{JobQueue, PushError};
pub use service::{BatchOutcome, ChainSubmitError, ServiceConfig, SpgemmService, SubmitError};
pub use stats::{ServiceStats, WorkerStats};
