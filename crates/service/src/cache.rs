//! LRU cache of reorganization plans.
//!
//! A [`block_reorganizer::plan::ReorgPlan`] depends only on the operands'
//! sparsity *structure*, the reorganizer configuration, and the target
//! device (split factors scale with the SM count). [`PlanKey`] captures
//! exactly those three inputs, so a cached plan is valid for every request
//! that maps to the same key — including requests whose matrix *values*
//! differ, since plans are value-independent.
//!
//! The cache is a plain `Mutex<HashMap>` with a monotonic recency tick:
//! capacities are small (tens of plans), so `O(n)` eviction is cheaper and
//! simpler than an intrusive list. Plans are handed out as
//! `Arc<ReorgPlan>`, so concurrent workers share one artifact without
//! copying, and eviction never invalidates an executing plan.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};

use block_reorganizer::config::SplitPolicy;
use block_reorganizer::plan::ReorgPlan;
use block_reorganizer::reorder::ReorderStrategy;
use block_reorganizer::ReorganizerConfig;
use br_obs::{lock_recover, Counter, Registry};
use br_spgemm::accum::{global_thresholds, BinThresholds};
use br_spgemm::context::ProblemSignature;
use br_spgemm::estimate::EstimatorConfig;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Fingerprint of a [`ReorganizerConfig`] — part of the cache key, because
/// classification thresholds and split policies change the plan.
pub fn config_fingerprint(c: &ReorganizerConfig) -> u64 {
    let policy = match c.split_policy {
        SplitPolicy::Auto => 1u64 << 32,
        SplitPolicy::Fixed(f) => (2u64 << 32) | f as u64,
        SplitPolicy::Greedy => 3u64 << 32,
    };
    let toggles =
        (c.enable_split as u64) | ((c.enable_gather as u64) << 1) | ((c.enable_limit as u64) << 2);
    [
        c.alpha.to_bits(),
        c.beta.to_bits(),
        c.limiting_units as u64,
        c.block_size as u64,
        c.gather_block as u64,
        policy,
        toggles,
    ]
    .iter()
    .fold(FNV_OFFSET, |h, &v| fnv_mix(h, v))
}

/// Fingerprint of the process-wide `--bins` threshold override, 0 when no
/// override is installed. Part of the cache key: a forced threshold set
/// changes the plan's bin membership (most visibly whether rows route
/// through the k-way tournament merge), so plans built under different
/// overrides must not alias.
pub fn thresholds_fingerprint(thresholds: Option<BinThresholds>) -> u64 {
    match thresholds {
        None => 0,
        Some(t) => [t.tiny_max, t.heavy_min, t.kway_min]
            .iter()
            .fold(FNV_OFFSET, |h, &v| fnv_mix(h, v)),
    }
}

/// The full cache key: what a plan is a function of.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Sparsity signature of the operand pair.
    pub problem: ProblemSignature,
    /// Target device name (split factors depend on the SM count).
    pub device: String,
    /// [`config_fingerprint`] of the reorganizer configuration.
    pub config: u64,
    /// [`EstimatorConfig::fingerprint`] when the service plans via the
    /// sampling estimator, 0 on the exact path. Plans built from different
    /// estimator settings (or exactly) are different artifacts — their
    /// method choice and bin thresholds can differ — so they must not
    /// alias in the cache.
    pub estimator: u64,
    /// [`thresholds_fingerprint`] of the process-wide `--bins` override in
    /// effect when the key was built, 0 without one. Forced thresholds
    /// change bin membership (e.g. enabling the k-way merge bin), so plans
    /// built under different overrides are different artifacts.
    pub thresholds: u64,
    /// [`ReorderStrategy::fingerprint`] of the requested row-reordering
    /// strategy, 0 for the default `none` — legacy keys keep their exact
    /// historical identity. A reordered plan carries a permutation (and
    /// analysis taken over the permuted structure), so it must never
    /// alias the baseline plan for the same problem; `auto` is keyed as
    /// requested, since its per-problem resolution is deterministic.
    pub reorder: u64,
}

impl PlanKey {
    /// Builds the key for one exactly-planned request.
    pub fn new(problem: ProblemSignature, device: &str, config: &ReorganizerConfig) -> Self {
        Self::with_estimator(problem, device, config, None)
    }

    /// Builds the key for one request, estimator-planned when `estimator`
    /// is set.
    pub fn with_estimator(
        problem: ProblemSignature,
        device: &str,
        config: &ReorganizerConfig,
        estimator: Option<&EstimatorConfig>,
    ) -> Self {
        Self::with_options(problem, device, config, estimator, ReorderStrategy::None)
    }

    /// Builds the key for one request with every plan-shaping option
    /// spelled out: the estimator (when the service plans by sampling)
    /// and the row-reordering strategy the worker pool applies.
    pub fn with_options(
        problem: ProblemSignature,
        device: &str,
        config: &ReorganizerConfig,
        estimator: Option<&EstimatorConfig>,
        reorder: ReorderStrategy,
    ) -> Self {
        PlanKey {
            problem,
            device: device.to_string(),
            config: config_fingerprint(config),
            estimator: estimator.map_or(0, EstimatorConfig::fingerprint),
            thresholds: thresholds_fingerprint(global_thresholds()),
            reorder: reorder.fingerprint(),
        }
    }
}

/// Hit/miss/eviction counters of a [`PlanCache`], sampled atomically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Plans evicted to make room.
    pub evictions: u64,
    /// Plans currently resident.
    pub entries: usize,
    /// Maximum resident plans.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups that hit, in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    plan: Arc<ReorgPlan>,
    last_used: u64,
}

struct Inner {
    map: HashMap<PlanKey, Entry>,
    /// Keys whose plan is currently being built by some worker
    /// (single-flight: later requesters wait instead of rebuilding).
    building: HashSet<PlanKey>,
    tick: u64,
}

impl Inner {
    /// Evicts the least-recently-used entry if inserting `key` would
    /// overflow `capacity`, returning whether an eviction happened. Shared
    /// by [`PlanCache::insert`] and [`PlanCache::get_or_build`].
    fn make_room_for(&mut self, key: &PlanKey, capacity: usize) -> bool {
        if !self.map.contains_key(key) && self.map.len() >= capacity {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                return true;
            }
        }
        false
    }
}

/// Thread-safe LRU plan cache.
///
/// Counters live in a [`br_obs::Registry`] (one private registry per cache
/// by default, or a shared one via [`PlanCache::with_registry`]), so the
/// same numbers that [`PlanCache::stats`] reports are exported by the
/// service's Prometheus/JSONL exposition. Hits, misses, and evictions are
/// deterministic under single-flight; the single-flight *wait* counter is
/// timing-flagged because whether a waiter actually blocks depends on
/// scheduling.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    /// Signalled when a pending build lands (or is abandoned).
    ready: Condvar,
    registry: Arc<Registry>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    single_flight_waits: Counter,
    /// Counter readings at construction. A shared registry (e.g. the
    /// process-wide one) hands every cache the *same* named counters, so
    /// [`PlanCache::stats`] subtracts these to report this cache's own
    /// activity while the exposition keeps the cumulative totals.
    hits_base: u64,
    misses_base: u64,
    evictions_base: u64,
}

/// Removes `key` from the building set and wakes waiters when dropped —
/// covers the panic path of a [`PlanCache::get_or_build`] build closure, so
/// waiters retry the build themselves instead of sleeping forever.
struct BuildGuard<'a> {
    cache: &'a PlanCache,
    key: &'a PlanKey,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        let mut inner = lock_recover(&self.cache.inner);
        inner.building.remove(self.key);
        drop(inner);
        self.cache.ready.notify_all();
    }
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (minimum 1), with
    /// its own private metrics registry.
    pub fn new(capacity: usize) -> Self {
        Self::with_registry(capacity, Arc::new(Registry::new()))
    }

    /// Creates a cache whose counters are registered in `registry` — the
    /// service passes its own registry here so cache counters show up in
    /// the exported exposition.
    pub fn with_registry(capacity: usize, registry: Arc<Registry>) -> Self {
        let hits = registry.counter(
            "br_cache_hits_total",
            "Plan-cache lookups served from cache (single-flight waiters count as hits).",
            &[],
        );
        let misses = registry.counter(
            "br_cache_misses_total",
            "Plan-cache lookups that built a plan.",
            &[],
        );
        let evictions = registry.counter(
            "br_cache_evictions_total",
            "Plans evicted to make room.",
            &[],
        );
        let single_flight_waits = registry.timing_counter(
            "br_cache_single_flight_waits_total",
            "Requests that blocked on another worker's in-flight build (scheduling-dependent).",
            &[],
        );
        let (hits_base, misses_base, evictions_base) = (hits.get(), misses.get(), evictions.get());
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                building: HashSet::new(),
                tick: 0,
            }),
            ready: Condvar::new(),
            registry,
            hits,
            misses,
            evictions,
            single_flight_waits,
            hits_base,
            misses_base,
            evictions_base,
        }
    }

    /// The registry holding this cache's counters.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Looks up a plan, counting a hit or a miss and refreshing recency.
    pub fn lookup(&self, key: &PlanKey) -> Option<Arc<ReorgPlan>> {
        let mut inner = lock_recover(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let plan = entry.plan.clone();
                self.hits.inc();
                Some(plan)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Inserts (or replaces) a plan, evicting the least-recently-used entry
    /// if the cache is full.
    pub fn insert(&self, key: PlanKey, plan: Arc<ReorgPlan>) {
        let mut inner = lock_recover(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if inner.make_room_for(&key, self.capacity) {
            self.evictions.inc();
        }
        inner.map.insert(
            key,
            Entry {
                plan,
                last_used: tick,
            },
        );
    }

    /// Returns the cached plan for `key`, building and inserting it with
    /// `build` on a miss. Single-flight: when several workers race on the
    /// same absent key, exactly one runs `build` (counted as **one miss**)
    /// while the rest block and are served the landed plan (counted as
    /// **one hit each**). Counters therefore depend only on the multiset
    /// of requested keys — not on worker count or scheduling — as long as
    /// no eviction intervenes (capacity ≥ distinct live keys).
    ///
    /// The returned flag is `true` when the plan came from cache (a hit,
    /// including waited-for builds) and `false` when this call built it.
    ///
    /// If `build` panics, the pending marker is cleared and waiters retry
    /// the build themselves.
    pub fn get_or_build(
        &self,
        key: &PlanKey,
        build: impl FnOnce() -> Arc<ReorgPlan>,
    ) -> (Arc<ReorgPlan>, bool) {
        let mut inner = lock_recover(&self.inner);
        let mut counted_hit = false;
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(key) {
                entry.last_used = tick;
                let plan = entry.plan.clone();
                if !counted_hit {
                    self.hits.inc();
                }
                return (plan, true);
            }
            if !inner.building.contains(key) {
                break;
            }
            // Another worker is building this plan: count the hit now (the
            // outcome is already determined) and wait for it to land. The
            // wait itself is scheduling-dependent, hence a timing counter.
            if !counted_hit {
                self.hits.inc();
                self.single_flight_waits.inc();
                counted_hit = true;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        // This call is the builder for `key`.
        self.misses.inc();
        inner.building.insert(key.clone());
        drop(inner);

        let guard = BuildGuard { cache: self, key };
        let plan = build();
        {
            let mut inner = lock_recover(&self.inner);
            inner.tick += 1;
            let tick = inner.tick;
            if inner.make_room_for(key, self.capacity) {
                self.evictions.inc();
            }
            inner.map.insert(
                key.clone(),
                Entry {
                    plan: plan.clone(),
                    last_used: tick,
                },
            );
        }
        drop(guard); // clears the pending marker and wakes waiters
        (plan, false)
    }

    /// Current counters — this cache's activity only, even when the
    /// registry (and therefore the named counters) is shared.
    pub fn stats(&self) -> CacheStats {
        let inner = lock_recover(&self.inner);
        CacheStats {
            hits: self.hits.get() - self.hits_base,
            misses: self.misses.get() - self.misses_base,
            evictions: self.evictions.get() - self.evictions_base,
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).map.len()
    }

    /// True when no plan is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a key is resident, *without* touching counters or recency
    /// (test/diagnostic hook).
    pub fn contains(&self, key: &PlanKey) -> bool {
        lock_recover(&self.inner).map.contains_key(key)
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use block_reorganizer::plan::PlanMode;
    use br_datasets::rmat::{rmat, RmatConfig};
    use br_gpu_sim::device::DeviceConfig;
    use br_spgemm::context::ProblemContext;

    fn plan_for(seed: u64) -> (PlanKey, Arc<ReorgPlan>, ProblemContext<f64>) {
        let a = rmat(RmatConfig::snap_like(7, 6, seed)).to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let dev = DeviceConfig::titan_xp();
        let cfg = ReorganizerConfig::default();
        let key = PlanKey::new(ctx.signature(), &dev.name, &cfg);
        let plan = Arc::new(ReorgPlan::build(&ctx, &cfg, &dev));
        (key, plan, ctx)
    }

    #[test]
    fn hit_on_identical_signature_miss_on_different() {
        let cache = PlanCache::new(8);
        let (key, plan, _) = plan_for(1);
        assert!(cache.lookup(&key).is_none());
        cache.insert(key.clone(), plan);
        assert!(cache.lookup(&key).is_some());
        let (other_key, _, _) = plan_for(2);
        assert!(cache.lookup(&other_key).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn value_mutation_hits_structure_mutation_misses() {
        let cache = PlanCache::new(8);
        let a = rmat(RmatConfig::snap_like(7, 6, 3)).to_csr();
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let dev = DeviceConfig::titan_xp();
        let cfg = ReorganizerConfig::default();
        let key = PlanKey::new(ctx.signature(), &dev.name, &cfg);
        cache.insert(key, Arc::new(ReorgPlan::build(&ctx, &cfg, &dev)));

        // Same structure, new values → same key → hit.
        let scaled = a.map_values(|v| v + 1.0);
        let scaled_ctx = ProblemContext::new(&scaled, &scaled).unwrap();
        let scaled_key = PlanKey::new(scaled_ctx.signature(), &dev.name, &cfg);
        assert!(cache.lookup(&scaled_key).is_some());

        // Structure mutated (an entry pruned) → different key → miss.
        let mut val = a.val().to_vec();
        val[0] = 0.0;
        let mutated = br_sparse::CsrMatrix::try_new(
            a.nrows(),
            a.ncols(),
            a.ptr().to_vec(),
            a.idx().to_vec(),
            val,
        )
        .unwrap()
        .prune(1e-12);
        let mutated_ctx = ProblemContext::new(&mutated, &mutated).unwrap();
        let mutated_key = PlanKey::new(mutated_ctx.signature(), &dev.name, &cfg);
        assert!(cache.lookup(&mutated_key).is_none());
    }

    #[test]
    fn different_device_or_config_is_a_different_key() {
        let (key, _, ctx) = plan_for(4);
        let v100 = DeviceConfig::tesla_v100();
        let cfg = ReorganizerConfig::default();
        let other_dev = PlanKey::new(ctx.signature(), &v100.name, &cfg);
        assert_ne!(key, other_dev);
        let strict = ReorganizerConfig {
            alpha: 64.0,
            ..Default::default()
        };
        let other_cfg = PlanKey::new(ctx.signature(), "NVIDIA TITAN Xp", &strict);
        assert_ne!(key.config, other_cfg.config);
    }

    #[test]
    fn estimator_settings_separate_keys() {
        let (key, _, ctx) = plan_for(5);
        let cfg = ReorganizerConfig::default();
        let est = EstimatorConfig::default();
        let estimated =
            PlanKey::with_estimator(ctx.signature(), "NVIDIA TITAN Xp", &cfg, Some(&est));
        // Exact vs estimated must not alias.
        assert_ne!(key, estimated);
        assert_eq!(key.estimator, 0);
        // Different estimator settings must not alias either.
        let other = EstimatorConfig {
            samples: 128,
            ..est
        };
        let other_key =
            PlanKey::with_estimator(ctx.signature(), "NVIDIA TITAN Xp", &cfg, Some(&other));
        assert_ne!(estimated.estimator, other_key.estimator);
        // And `new` is exactly `with_estimator(.., None)`.
        assert_eq!(
            key,
            PlanKey::with_estimator(ctx.signature(), "NVIDIA TITAN Xp", &cfg, None)
        );
    }

    #[test]
    fn reorder_strategies_separate_keys() {
        let (key, _, ctx) = plan_for(6);
        let cfg = ReorganizerConfig::default();
        // The default strategy keeps the legacy key identity.
        assert_eq!(key.reorder, 0);
        assert_eq!(
            key,
            PlanKey::with_options(
                ctx.signature(),
                "NVIDIA TITAN Xp",
                &cfg,
                None,
                ReorderStrategy::None
            )
        );
        // Every non-default strategy (auto included — it is keyed as
        // requested) gets its own key.
        let mut prints = vec![0u64];
        for strategy in [
            ReorderStrategy::Degree,
            ReorderStrategy::Rcm,
            ReorderStrategy::Cluster,
            ReorderStrategy::Auto,
        ] {
            let reordered =
                PlanKey::with_options(ctx.signature(), "NVIDIA TITAN Xp", &cfg, None, strategy);
            assert_ne!(reordered, key, "{strategy:?} must not alias the baseline");
            assert!(
                !prints.contains(&reordered.reorder),
                "{strategy:?} fingerprint must be unique"
            );
            prints.push(reordered.reorder);
        }
    }

    #[test]
    fn threshold_overrides_separate_keys() {
        // No override → fingerprint 0 (legacy keys unchanged).
        assert_eq!(thresholds_fingerprint(None), 0);
        let base = thresholds_fingerprint(Some(BinThresholds::default()));
        assert_ne!(base, 0);
        // Enabling the kway bin changes the fingerprint.
        let kway = thresholds_fingerprint(Some(BinThresholds {
            kway_min: 4096,
            ..Default::default()
        }));
        assert_ne!(base, kway);

        // A key built under a kway-enabling override must not alias the
        // same problem's override-free key.
        let (key, _, ctx) = plan_for(6);
        let cfg = ReorganizerConfig::default();
        br_spgemm::accum::set_global_thresholds(Some(BinThresholds {
            kway_min: 4096,
            ..Default::default()
        }));
        let forced = PlanKey::new(ctx.signature(), "NVIDIA TITAN Xp", &cfg);
        br_spgemm::accum::set_global_thresholds(None);
        assert_ne!(key, forced);
        assert_eq!(key.thresholds, 0);
        assert_eq!(forced.thresholds, kway);
    }

    #[test]
    fn lru_eviction_order_under_small_capacity() {
        let cache = PlanCache::new(2);
        let (ka, pa, _) = plan_for(10);
        let (kb, pb, _) = plan_for(11);
        let (kc, pc, _) = plan_for(12);
        cache.insert(ka.clone(), pa);
        cache.insert(kb.clone(), pb);
        // Touch A so B becomes the LRU victim.
        assert!(cache.lookup(&ka).is_some());
        cache.insert(kc.clone(), pc);
        assert!(cache.contains(&ka), "recently-used survives");
        assert!(!cache.contains(&kb), "LRU entry is evicted");
        assert!(cache.contains(&kc));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_follows_exact_recency_order_across_multiple_evictions() {
        // Fill to capacity 3, then establish recency A < C < B by lookups
        // and verify successive inserts evict in exactly that order.
        let cache = PlanCache::new(3);
        let (ka, pa, _) = plan_for(40);
        let (kb, pb, _) = plan_for(41);
        let (kc, pc, _) = plan_for(42);
        let (kd, pd, _) = plan_for(43);
        let (ke, pe, _) = plan_for(44);
        cache.insert(ka.clone(), pa);
        cache.insert(kb.clone(), pb);
        cache.insert(kc.clone(), pc);
        assert!(cache.lookup(&kc).is_some());
        assert!(cache.lookup(&kb).is_some());

        cache.insert(kd.clone(), pd);
        assert!(!cache.contains(&ka), "A is oldest → first victim");
        assert!(cache.contains(&kb) && cache.contains(&kc) && cache.contains(&kd));

        cache.insert(ke.clone(), pe);
        assert!(!cache.contains(&kc), "C is next-oldest → second victim");
        assert!(cache.contains(&kb) && cache.contains(&kd) && cache.contains(&ke));
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn insert_refreshes_recency_like_a_lookup() {
        // Re-inserting an existing key must protect it from the next
        // eviction exactly as a lookup would.
        let cache = PlanCache::new(2);
        let (ka, pa, _) = plan_for(50);
        let (kb, pb, _) = plan_for(51);
        let (kc, pc, _) = plan_for(52);
        cache.insert(ka.clone(), pa.clone());
        cache.insert(kb.clone(), pb);
        cache.insert(ka.clone(), pa); // refresh A; B is now the LRU entry
        cache.insert(kc, pc);
        assert!(cache.contains(&ka), "refreshed entry survives");
        assert!(!cache.contains(&kb), "stale entry is the victim");
    }

    #[test]
    fn missed_lookup_does_not_disturb_recency() {
        let cache = PlanCache::new(2);
        let (ka, pa, _) = plan_for(60);
        let (kb, pb, _) = plan_for(61);
        let (kc, pc, _) = plan_for(62);
        let (kd, _, _) = plan_for(63);
        cache.insert(ka.clone(), pa);
        cache.insert(kb.clone(), pb);
        // Misses on an absent key must not age or refresh resident entries.
        for _ in 0..5 {
            assert!(cache.lookup(&kd).is_none());
        }
        cache.insert(kc, pc);
        assert!(!cache.contains(&ka), "A is still the LRU victim");
        assert!(cache.contains(&kb));
        assert_eq!(cache.stats().misses, 5);
    }

    #[test]
    fn capacity_one_always_evicts_the_previous_plan() {
        let cache = PlanCache::new(1);
        let (ka, pa, _) = plan_for(70);
        let (kb, pb, _) = plan_for(71);
        cache.insert(ka.clone(), pa);
        cache.insert(kb.clone(), pb);
        assert!(!cache.contains(&ka));
        assert!(cache.contains(&kb));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = PlanCache::new(2);
        let (ka, pa, _) = plan_for(20);
        let (kb, pb, _) = plan_for(21);
        cache.insert(ka.clone(), pa.clone());
        cache.insert(kb, pb);
        cache.insert(ka, pa);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn get_or_build_counts_one_miss_then_hits() {
        let cache = PlanCache::new(4);
        let (key, plan, _) = plan_for(80);
        let (p1, cached1) = cache.get_or_build(&key, || plan.clone());
        assert!(!cached1, "first request builds");
        for _ in 0..3 {
            let (p, cached) = cache.get_or_build(&key, || panic!("must not rebuild"));
            assert!(cached);
            assert!(Arc::ptr_eq(&p, &p1), "same artifact is shared");
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (3, 1));
    }

    #[test]
    fn get_or_build_single_flight_under_contention() {
        // 8 threads race on 2 distinct keys: exactly one build per key must
        // run, and the counters must equal (requests - distinct, distinct)
        // regardless of interleaving.
        use std::sync::atomic::{AtomicU64, Ordering};
        let cache = Arc::new(PlanCache::new(8));
        let (ka, pa, _) = plan_for(90);
        let (kb, pb, _) = plan_for(91);
        let builds = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for i in 0..8 {
            let cache = cache.clone();
            let key = if i % 2 == 0 { ka.clone() } else { kb.clone() };
            let plan = if i % 2 == 0 { pa.clone() } else { pb.clone() };
            let builds = builds.clone();
            handles.push(std::thread::spawn(move || {
                let (_, cached) = cache.get_or_build(&key, || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    // Widen the race window so waiters actually wait.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    plan
                });
                cached
            }));
        }
        let served_from_cache = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&c| c)
            .count();
        assert_eq!(builds.load(Ordering::SeqCst), 2, "one build per key");
        assert_eq!(served_from_cache, 6);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (6, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn get_or_build_recovers_from_a_panicking_builder() {
        let cache = PlanCache::new(4);
        let (key, plan, _) = plan_for(95);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build(&key, || panic!("builder died"));
        }));
        assert!(result.is_err());
        // The pending marker must be gone: the next request builds afresh
        // instead of deadlocking.
        let (_, cached) = cache.get_or_build(&key, || plan);
        assert!(!cached);
        assert!(cache.contains(&key));
    }

    #[test]
    fn counters_surface_in_registry_exposition() {
        let registry = Arc::new(Registry::new());
        let cache = PlanCache::with_registry(2, registry.clone());
        let (key, plan, _) = plan_for(99);
        assert!(cache.lookup(&key).is_none());
        cache.insert(key.clone(), plan);
        assert!(cache.lookup(&key).is_some());
        let text = registry.render_prometheus(false);
        assert!(text.contains("br_cache_hits_total 1"), "{text}");
        assert!(text.contains("br_cache_misses_total 1"), "{text}");
        assert!(text.contains("br_cache_evictions_total 0"), "{text}");
        // The wait counter is scheduling-dependent → timing-flagged → only
        // visible when timing families are requested.
        assert!(!text.contains("single_flight_waits"), "{text}");
        let full = registry.render_prometheus(true);
        assert!(
            full.contains("br_cache_single_flight_waits_total 0"),
            "{full}"
        );
    }

    #[test]
    fn stats_are_per_cache_even_with_a_shared_registry() {
        // Two caches on one registry share the named counters; stats()
        // must still report only each cache's own activity (the second
        // cache starts from the first one's cumulative totals).
        let registry = Arc::new(Registry::new());
        let first = PlanCache::with_registry(2, registry.clone());
        let (key, plan, _) = plan_for(7);
        assert!(first.lookup(&key).is_none());
        first.insert(key.clone(), plan.clone());
        assert!(first.lookup(&key).is_some());
        let s1 = first.stats();
        assert_eq!((s1.hits, s1.misses), (1, 1));

        let second = PlanCache::with_registry(2, registry.clone());
        assert!(second.lookup(&key).is_none());
        second.insert(key.clone(), plan);
        assert!(second.lookup(&key).is_some());
        assert!(second.lookup(&key).is_some());
        let s2 = second.stats();
        assert_eq!((s2.hits, s2.misses), (2, 1));
        // The exposition keeps the cumulative process-wide view.
        let text = registry.render_prometheus(false);
        assert!(text.contains("br_cache_hits_total 3"), "{text}");
        assert!(text.contains("br_cache_misses_total 2"), "{text}");
    }

    #[test]
    fn cross_thread_reuse_of_one_arc_plan() {
        let cache = Arc::new(PlanCache::new(4));
        let (key, plan, ctx) = plan_for(30);
        cache.insert(key.clone(), plan);
        let ctx = Arc::new(ctx);
        let dev = DeviceConfig::titan_xp();

        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = cache.clone();
            let key = key.clone();
            let ctx = ctx.clone();
            let dev = dev.clone();
            handles.push(std::thread::spawn(move || {
                let plan = cache.lookup(&key).expect("plan is resident");
                let run = plan.execute(&ctx, &dev, PlanMode::Cached).unwrap();
                (run.result.ptr().to_vec(), run.result.nnz())
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(cache.stats().hits, 4);
    }
}
