//! A blocking multi-producer/multi-consumer job queue.
//!
//! Std-only (`Mutex` + `Condvar` over a `VecDeque`): producers [`push`],
//! workers block in [`pop`] until an item arrives or the queue is
//! [`close`]d and drained. The queue also tracks the high-water depth for
//! [`crate::stats::ServiceStats`].
//!
//! Lock discipline: every acquisition goes through
//! [`br_obs::lock_recover`], so a worker that panics while holding the
//! queue mutex poisons nothing — the queue state is a plain `VecDeque` plus
//! two scalars, always consistent at every await point, and the remaining
//! workers keep draining.
//!
//! [`push`]: JobQueue::push
//! [`pop`]: JobQueue::pop
//! [`close`]: JobQueue::close

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use br_obs::lock_recover;

/// Why [`JobQueue::try_push`] refused an item. The rejected item is handed
/// back so the caller can answer its submitter (the admission-control
/// composition point for the wire front end and the in-process batch path).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is bounded and at capacity.
    Full(T),
    /// The queue has been closed.
    Closed(T),
}

impl<T> PushError<T> {
    /// The rejected item.
    pub fn into_item(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }

    /// Short reason name for messages and metrics labels.
    pub fn reason(&self) -> &'static str {
        match self {
            PushError::Full(_) => "full",
            PushError::Closed(_) => "closed",
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    capacity: Option<usize>,
    closed: bool,
    max_depth: usize,
}

/// Blocking FIFO shared by submitters and the worker pool.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
}

impl<T> JobQueue<T> {
    /// An open, empty, unbounded queue.
    pub fn new() -> Self {
        Self::with_capacity(None)
    }

    /// An open, empty queue shedding pushes beyond `capacity` items
    /// (clamped to ≥ 1).
    pub fn bounded(capacity: usize) -> Self {
        Self::with_capacity(Some(capacity.max(1)))
    }

    fn with_capacity(capacity: Option<usize>) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                capacity,
                closed: false,
                max_depth: 0,
            }),
            nonempty: Condvar::new(),
        }
    }

    /// Enqueues an item and wakes one waiting worker.
    ///
    /// Returns `false` (dropping the item) if the queue is closed or — on
    /// a [`bounded`](Self::bounded) queue — full. Callers that need the
    /// item back or the rejection reason use [`try_push`](Self::try_push).
    pub fn push(&self, item: T) -> bool {
        self.try_push(item).is_ok()
    }

    /// Non-blocking admission: enqueues and returns the depth after the
    /// push, or a typed rejection carrying the item back.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if let Some(capacity) = inner.capacity {
            if inner.items.len() >= capacity {
                return Err(PushError::Full(item));
            }
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        inner.max_depth = inner.max_depth.max(depth);
        drop(inner);
        self.nonempty.notify_one();
        Ok(depth)
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .nonempty
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Marks the queue closed and wakes every waiter. Already-queued items
    /// are still delivered.
    pub fn close(&self) {
        lock_recover(&self.inner).closed = true;
        self.nonempty.notify_all();
    }

    /// Current number of queued items.
    pub fn depth(&self) -> usize {
        lock_recover(&self.inner).items.len()
    }

    /// Largest depth ever observed.
    pub fn max_depth(&self) -> usize {
        lock_recover(&self.inner).max_depth
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.inner).closed
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        lock_recover(&self.inner).capacity
    }

    /// Test hook: panic inside the queue's critical section, leaving the
    /// mutex poisoned, to prove the poison-recovering lock discipline keeps
    /// the queue usable afterwards.
    #[doc(hidden)]
    pub fn poison_for_test(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock_recover(&self.inner);
            panic!("injected panic inside queue critical section");
        }));
        assert!(
            self.inner.is_poisoned(),
            "mutex must be poisoned by the injected panic"
        );
    }
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for JobQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock_recover(&self.inner);
        f.debug_struct("JobQueue")
            .field("depth", &inner.items.len())
            .field("max_depth", &inner.max_depth)
            .field("closed", &inner.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_and_high_water_mark() {
        let q = JobQueue::new();
        for i in 0..5 {
            assert!(q.push(i));
        }
        assert_eq!(q.depth(), 5);
        assert_eq!(q.max_depth(), 5);
        let drained: Vec<i32> =
            std::iter::from_fn(|| if q.depth() > 0 { q.pop() } else { None }).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.max_depth(), 5, "high-water mark survives draining");
    }

    #[test]
    fn close_unblocks_waiters_and_rejects_pushes() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new());
        let waiter = {
            let q = q.clone();
            thread::spawn(move || q.pop())
        };
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
        assert!(!q.push(7), "closed queue rejects new work");
    }

    #[test]
    fn queued_items_survive_close() {
        let q: JobQueue<&str> = JobQueue::new();
        q.push("a");
        q.close();
        assert_eq!(q.pop(), Some("a"), "drain continues after close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn poisoned_queue_keeps_serving() {
        let q: JobQueue<u32> = JobQueue::new();
        assert!(q.push(1));
        q.poison_for_test();
        // Every operation must recover from the poisoned mutex.
        assert!(q.push(2));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.close();
        assert_eq!(q.pop(), None);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn bounded_queue_sheds_with_typed_rejection() {
        let q = JobQueue::bounded(2);
        assert_eq!(q.capacity(), Some(2));
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert!(!q.push(4), "push mirrors the typed rejection");
        assert_eq!(q.max_depth(), 2, "bound caps the high-water mark");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(5), Ok(2), "room frees up after a pop");
        q.close();
        let err = q.try_push(6).unwrap_err();
        assert_eq!(err.reason(), "closed");
        assert_eq!(err.into_item(), 6, "rejection hands the item back");
    }

    #[test]
    fn unbounded_queue_never_sheds() {
        let q = JobQueue::new();
        assert_eq!(q.capacity(), None);
        for i in 0..1000usize {
            assert_eq!(q.try_push(i), Ok(i + 1));
        }
    }

    #[test]
    fn many_workers_consume_each_item_exactly_once() {
        let q: Arc<JobQueue<u64>> = Arc::new(JobQueue::new());
        let n = 200u64;
        for i in 0..n {
            q.push(i);
        }
        q.close();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut sum = 0u64;
                    let mut count = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                        count += 1;
                    }
                    (sum, count)
                })
            })
            .collect();
        let (sum, count) = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, 0), |(s, c), (s2, c2)| (s + s2, c + c2));
        assert_eq!(count, n);
        assert_eq!(sum, n * (n - 1) / 2);
    }
}
