//! Job descriptions, outcomes, and the `blockreorg-cli batch` job-file
//! format.
//!
//! A [`JobRequest`] is what the service executes: an operand pair (shared
//! `Arc`s, so a batch of repeats holds one copy of the data) plus a
//! reorganizer configuration. A [`JobSpec`] is the *declarative* form read
//! from a job file — a matrix source plus a repeat count — which
//! [`expand_jobs`] realizes into requests.
//!
//! Job-file format: one job per line, `key=value` tokens separated by
//! whitespace, `#` starts a comment. Exactly one source key per line:
//!
//! ```text
//! # 8 repeated squarings of the as-caida surrogate (dim ÷ 16)
//! dataset=as-caida scale=16 repeat=8
//! rmat=12,8 seed=42 repeat=4
//! input=path/to/matrix.mtx pair=path/to/other.mtx
//! # a chained workload over the source matrix (square:k, triangle,
//! # markov:iters,tol, galerkin)
//! chain=galerkin dataset=as-caida scale=16
//! ```
//!
//! A `chain=` line turns the source into the *base matrix* of a canonical
//! [`br_workloads::Workload`]; [`expand_submissions`] realizes such lines
//! into [`crate::chain::ChainRequest`]s (and plain lines into
//! [`JobRequest`]s) sharing one id namespace.

use std::sync::Arc;

use block_reorganizer::pass::ReorgStats;
use block_reorganizer::ReorganizerConfig;
use br_datasets::registry::{RealWorldRegistry, ScaleFactor};
use br_datasets::rmat::{rmat, RmatConfig};
use br_sparse::io::read_matrix_market_file;
use br_sparse::CsrMatrix;
use br_workloads::Workload;

use crate::chain::ChainRequest;

/// One multiplication request `C = A · B`.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Caller-chosen identifier, echoed in the outcome.
    pub id: u64,
    /// Human-readable label for reports (dataset name, file stem, …).
    pub label: String,
    /// Left operand.
    pub a: Arc<CsrMatrix<f64>>,
    /// Right operand.
    pub b: Arc<CsrMatrix<f64>>,
    /// Reorganizer configuration for this job.
    pub config: ReorganizerConfig,
}

impl JobRequest {
    /// A squaring request (`C = A²`) under the default configuration.
    pub fn square(id: u64, a: Arc<CsrMatrix<f64>>) -> Self {
        JobRequest {
            id,
            label: format!("job-{id}"),
            b: a.clone(),
            a,
            config: ReorganizerConfig::default(),
        }
    }

    /// A general `A · B` request under the default configuration.
    pub fn multiply(id: u64, a: Arc<CsrMatrix<f64>>, b: Arc<CsrMatrix<f64>>) -> Self {
        JobRequest {
            id,
            label: format!("job-{id}"),
            a,
            b,
            config: ReorganizerConfig::default(),
        }
    }

    /// Replaces the label (builder-style).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// What the service reports for one completed job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Identifier from the request.
    pub id: u64,
    /// Label from the request.
    pub label: String,
    /// Index of the worker that executed the job.
    pub worker: usize,
    /// Name of the worker's device.
    pub device: String,
    /// Whether the reorganization plan came from the cache.
    pub cache_hit: bool,
    /// Simulated end-to-end latency in ms (kernels + charged preprocessing).
    pub total_ms: f64,
    /// Simulated precalculation-kernel time in ms (0 on cache hits).
    pub precalc_ms: f64,
    /// Simulated expansion-kernel time in ms.
    pub expansion_ms: f64,
    /// Simulated merge-kernel time in ms.
    pub merge_ms: f64,
    /// Host-side B-Splitting preprocessing charged to this job, ms (0 on
    /// cache hits — the plan already paid it).
    pub preprocess_ms: f64,
    /// Wall-clock time the job spent queued, ms.
    pub queue_ms: f64,
    /// Wall-clock time the worker spent on the job, ms.
    pub host_ms: f64,
    /// Achieved simulated GFLOPS.
    pub gflops: f64,
    /// `nnz(C)`.
    pub nnz_c: usize,
    /// Reorganization statistics of the executed plan.
    pub stats: ReorgStats,
    /// The numeric result.
    pub result: CsrMatrix<f64>,
}

/// A failed job.
#[derive(Debug, Clone)]
pub struct JobError {
    /// Identifier from the request.
    pub id: u64,
    /// Label from the request.
    pub label: String,
    /// What went wrong.
    pub message: String,
}

/// Where a job-file line gets its matrix from.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixSource {
    /// A Table II registry surrogate at `dim ÷ scale`.
    Dataset {
        /// Registry name (`--list` shows all).
        name: String,
        /// Dimension divisor.
        scale: usize,
    },
    /// A generated RMAT graph.
    Rmat {
        /// log2 of the vertex count.
        scale: u32,
        /// Edges per vertex.
        edge_factor: usize,
        /// RNG seed.
        seed: u64,
    },
    /// A Matrix Market file on disk.
    File(String),
}

impl MatrixSource {
    /// Short display label for reports.
    pub fn label(&self) -> String {
        match self {
            MatrixSource::Dataset { name, .. } => name.clone(),
            MatrixSource::Rmat {
                scale, edge_factor, ..
            } => format!("rmat-{scale}-{edge_factor}"),
            MatrixSource::File(path) => {
                path.rsplit('/').next().unwrap_or(path.as_str()).to_string()
            }
        }
    }

    /// Realizes the matrix, with errors that name the valid choices.
    pub fn load(&self) -> Result<CsrMatrix<f64>, String> {
        match self {
            MatrixSource::Dataset { name, scale } => match RealWorldRegistry::get(name) {
                Some(spec) => Ok(spec.generate(ScaleFactor::Div(*scale))),
                None => {
                    let valid: Vec<&str> =
                        RealWorldRegistry::all().iter().map(|s| s.name).collect();
                    Err(format!(
                        "unknown dataset {name:?}; valid datasets: {}",
                        valid.join(", ")
                    ))
                }
            },
            MatrixSource::Rmat {
                scale,
                edge_factor,
                seed,
            } => Ok(rmat(RmatConfig::graph500(*scale, *edge_factor, *seed)).to_csr()),
            MatrixSource::File(path) => read_matrix_market_file::<f64, _>(path)
                .map_err(|e| format!("cannot read {path}: {e}")),
        }
    }
}

/// One parsed job-file line.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Left operand source (for chains: the base matrix).
    pub source: MatrixSource,
    /// Right operand source (`None` ⇒ squaring, `B = A`).
    pub pair: Option<MatrixSource>,
    /// How many times to submit the multiplication (or chain).
    pub repeat: u32,
    /// Canonical workload to run over the source instead of a single
    /// multiplication (`chain=` key; incompatible with `pair=`).
    pub chain: Option<Workload>,
}

/// Parses a job file; errors carry the 1-based line number.
pub fn parse_job_file(text: &str) -> Result<Vec<JobSpec>, String> {
    let mut specs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        specs.push(parse_job_line(line).map_err(|e| format!("job file line {}: {e}", lineno + 1))?);
    }
    if specs.is_empty() {
        return Err("job file contains no jobs".to_string());
    }
    Ok(specs)
}

fn parse_job_line(line: &str) -> Result<JobSpec, String> {
    let mut source: Option<MatrixSource> = None;
    let mut pair: Option<MatrixSource> = None;
    let mut scale = 16usize;
    let mut seed = 42u64;
    let mut repeat = 1u32;
    let mut dataset: Option<String> = None;
    let mut rmat_dims: Option<(u32, usize)> = None;
    let mut chain: Option<Workload> = None;

    for token in line.split_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {token:?}"))?;
        match key {
            "dataset" => dataset = Some(value.to_string()),
            "input" => source = Some(MatrixSource::File(value.to_string())),
            "pair" => pair = Some(MatrixSource::File(value.to_string())),
            "rmat" => {
                let (s, ef) = value
                    .split_once(',')
                    .ok_or_else(|| "rmat expects <scale,edge-factor>".to_string())?;
                let s: u32 = s.parse().map_err(|_| format!("bad rmat scale {s:?}"))?;
                let ef: usize = ef
                    .parse()
                    .map_err(|_| format!("bad rmat edge factor {ef:?}"))?;
                rmat_dims = Some((s, ef));
            }
            "scale" => {
                scale = value
                    .parse()
                    .map_err(|_| format!("bad scale {value:?} (positive integer)"))?
            }
            "seed" => {
                seed = value
                    .parse()
                    .map_err(|_| format!("bad seed {value:?} (integer)"))?
            }
            "repeat" => {
                repeat = value
                    .parse()
                    .map_err(|_| format!("bad repeat {value:?} (positive integer)"))?;
                if repeat == 0 {
                    return Err("repeat must be >= 1".to_string());
                }
            }
            "chain" => {
                chain = Some(Workload::parse(value).map_err(|e| format!("bad chain: {e}"))?)
            }
            other => {
                return Err(format!(
                    "unknown key {other:?} (valid: dataset, input, pair, rmat, scale, seed, repeat, chain)"
                ))
            }
        }
    }

    if let Some(name) = dataset {
        if source.is_some() || rmat_dims.is_some() {
            return Err("give exactly one of dataset / input / rmat".to_string());
        }
        source = Some(MatrixSource::Dataset { name, scale });
    }
    if let Some((s, ef)) = rmat_dims {
        if source.is_some() {
            return Err("give exactly one of dataset / input / rmat".to_string());
        }
        source = Some(MatrixSource::Rmat {
            scale: s,
            edge_factor: ef,
            seed,
        });
    }
    let source = source.ok_or_else(|| "missing source (dataset= / input= / rmat=)".to_string())?;
    if chain.is_some() && pair.is_some() {
        return Err("chain= uses the source as its base matrix; pair= is incompatible".to_string());
    }
    Ok(JobSpec {
        source,
        pair,
        repeat,
        chain,
    })
}

/// Jobs and chains realized from one job file, sharing an id namespace in
/// file order.
#[derive(Debug, Clone, Default)]
pub struct Submissions {
    /// Single-multiplication requests.
    pub jobs: Vec<JobRequest>,
    /// Chain requests (`chain=` lines).
    pub chains: Vec<ChainRequest>,
}

/// Realizes specs into requests. Repeats of one spec share the same `Arc`'d
/// operands, so the service sees structurally identical submissions — the
/// plan-cache amortization case. `chain=` lines are rejected here; use
/// [`expand_submissions`] when the file may mix jobs and chains.
pub fn expand_jobs(
    specs: &[JobSpec],
    config: ReorganizerConfig,
) -> Result<Vec<JobRequest>, String> {
    if specs.iter().any(|s| s.chain.is_some()) {
        return Err("job list contains chain= lines; use expand_submissions".to_string());
    }
    Ok(expand_submissions(specs, config)?.jobs)
}

/// Realizes specs into jobs *and* chains. Chain repeats share the same
/// prepared inputs, so a repeated chain replays identical structures — the
/// chain-level plan-cache amortization case.
pub fn expand_submissions(
    specs: &[JobSpec],
    config: ReorganizerConfig,
) -> Result<Submissions, String> {
    let mut out = Submissions::default();
    let mut id = 0u64;
    for spec in specs {
        let a = Arc::new(spec.source.load()?);
        let base = spec.source.label();
        if let Some(workload) = spec.chain {
            let inputs = workload.prepare_inputs(&a);
            for k in 0..spec.repeat {
                out.chains.push(ChainRequest {
                    id,
                    label: format!("{base}:{}[{}/{}]", workload.spec(), k + 1, spec.repeat),
                    program: workload.program(),
                    inputs: inputs.clone(),
                    config,
                });
                id += 1;
            }
            continue;
        }
        let b = match &spec.pair {
            Some(src) => Arc::new(src.load()?),
            None => a.clone(),
        };
        for k in 0..spec.repeat {
            out.jobs.push(JobRequest {
                id,
                label: format!("{base}[{}/{}]", k + 1, spec.repeat),
                a: a.clone(),
                b: b.clone(),
                config,
            });
            id += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_dataset_rmat_and_comments() {
        let text = "\n# comment\ndataset=as-caida scale=8 repeat=3  # trailing\nrmat=7,6 seed=9\n";
        let specs = parse_job_file(text).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(
            specs[0],
            JobSpec {
                source: MatrixSource::Dataset {
                    name: "as-caida".into(),
                    scale: 8
                },
                pair: None,
                repeat: 3,
                chain: None,
            }
        );
        assert_eq!(
            specs[1].source,
            MatrixSource::Rmat {
                scale: 7,
                edge_factor: 6,
                seed: 9
            }
        );
        assert_eq!(specs[1].repeat, 1);
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        assert!(parse_job_file("").is_err());
        let err = parse_job_file("dataset=a rmat=7,6").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_job_file("# fine\nbogus=1").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(parse_job_file("repeat=2").is_err(), "source is mandatory");
        assert!(parse_job_file("dataset=x repeat=0").is_err());
    }

    #[test]
    fn unknown_dataset_error_lists_valid_choices() {
        let err = MatrixSource::Dataset {
            name: "nope".into(),
            scale: 16,
        }
        .load()
        .unwrap_err();
        assert!(err.contains("unknown dataset"), "{err}");
        assert!(err.contains("as-caida"), "must list valid names: {err}");
    }

    #[test]
    fn parses_chain_lines_and_rejects_bad_ones() {
        let specs =
            parse_job_file("chain=galerkin rmat=6,4 repeat=2\nchain=square:4 rmat=6,4\n").unwrap();
        assert_eq!(specs[0].chain, Some(Workload::Galerkin));
        assert_eq!(specs[0].repeat, 2);
        assert_eq!(specs[1].chain, Some(Workload::Square { k: 4 }));
        let err = parse_job_file("chain=frobnicate rmat=6,4").unwrap_err();
        assert!(err.contains("bad chain"), "{err}");
        let err = parse_job_file("chain=triangle rmat=6,4 pair=x.mtx").unwrap_err();
        assert!(err.contains("incompatible"), "{err}");
    }

    #[test]
    fn expand_submissions_splits_jobs_and_chains_on_one_id_namespace() {
        let specs =
            parse_job_file("rmat=6,4 repeat=2\nchain=triangle rmat=6,4 seed=5 repeat=2\n").unwrap();
        let subs = expand_submissions(&specs, ReorganizerConfig::default()).unwrap();
        assert_eq!(subs.jobs.len(), 2);
        assert_eq!(subs.chains.len(), 2);
        assert_eq!(subs.jobs[1].id, 1);
        assert_eq!(subs.chains[0].id, 2);
        assert_eq!(subs.chains[1].id, 3);
        assert!(
            subs.chains[0].label.contains("triangle"),
            "{}",
            subs.chains[0].label
        );
        // Chain repeats share the prepared inputs.
        assert!(Arc::ptr_eq(
            &subs.chains[0].inputs[0],
            &subs.chains[1].inputs[0]
        ));
        // expand_jobs refuses mixed files with a pointer to the right API.
        let err = expand_jobs(&specs, ReorganizerConfig::default()).unwrap_err();
        assert!(err.contains("expand_submissions"), "{err}");
    }

    #[test]
    fn expand_shares_operands_across_repeats() {
        let specs = parse_job_file("rmat=6,4 repeat=3").unwrap();
        let jobs = expand_jobs(&specs, ReorganizerConfig::default()).unwrap();
        assert_eq!(jobs.len(), 3);
        assert!(Arc::ptr_eq(&jobs[0].a, &jobs[1].a));
        assert!(Arc::ptr_eq(&jobs[1].a, &jobs[2].a));
        assert!(Arc::ptr_eq(&jobs[0].a, &jobs[0].b), "square by default");
        assert_eq!(jobs[2].label, "rmat-6-4[3/3]");
        assert_eq!(jobs[2].id, 2);
    }
}
