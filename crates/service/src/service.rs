//! The job service: submission API, worker pool, and result collection.
//!
//! [`SpgemmService::start`] spawns one worker thread per configured device;
//! each worker owns a [`GpuSimulator`] and pulls jobs from a shared
//! [`JobQueue`]. Workers consult the shared [`PlanCache`] before running:
//! a hit executes in [`PlanMode::Cached`] (no precalculation kernel, no
//! host-side B-Splitting charge), a miss builds the [`ReorgPlan`], publishes
//! it, and executes cold. The numeric result is identical either way — the
//! plan captures only structure-dependent decisions.

use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use block_reorganizer::plan::{PlanMode, ReorgPlan};
use block_reorganizer::reorder::ReorderStrategy;
use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::sim::GpuSimulator;
use br_obs::{Counter, Gauge, Histogram, Registry};
use br_spgemm::accum::ScratchPool;
use br_spgemm::context::ProblemContext;
use br_spgemm::estimate::EstimatorConfig;

use crate::cache::{PlanCache, PlanKey};
use crate::chain::{self, ChainInstruments, ChainOutcome, ChainRequest};
use crate::job::{JobError, JobOutcome, JobRequest};
use crate::queue::{JobQueue, PushError};
use crate::stats::{ServiceStats, WorkerStats};

/// How to provision the service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// One worker is spawned per entry; duplicates give several workers on
    /// the same device model.
    pub devices: Vec<DeviceConfig>,
    /// Plan-cache capacity (entries; clamped to ≥ 1).
    pub cache_capacity: usize,
    /// Optional job-queue bound. `None` (the default) keeps the queue
    /// unbounded; `Some(n)` makes [`SpgemmService::try_submit`] shed with
    /// a typed [`SubmitError::QueueFull`] once `n` jobs are waiting — the
    /// same admission-control rejection the wire front end (`br-net`)
    /// applies at its shed threshold.
    pub queue_capacity: Option<usize>,
    /// Metrics registry shared by the service, its plan cache, and its job
    /// lifecycle spans. `None` gives the service a private registry (so
    /// concurrent services/tests never share counters); the CLI passes
    /// [`br_obs::global`] here to fold service metrics into the process
    /// exposition.
    pub registry: Option<Arc<Registry>>,
    /// Estimation-based planning. `None` (the default) builds every plan
    /// with the exact symbolic precalculation; `Some(cfg)` builds plans via
    /// [`ReorgPlan::build_estimated`] — sampled workload estimation with
    /// per-problem method selection, falling back to exact precalc when the
    /// confidence band exceeds `cfg.tolerance`. The estimator fingerprint
    /// is part of the [`PlanKey`], so flipping this setting never aliases
    /// cached plans built the other way.
    pub estimator: Option<EstimatorConfig>,
    /// Row-reordering strategy applied to every plan the pool builds
    /// ([`ReorderStrategy::None`], the default, is the historical
    /// pipeline). The strategy fingerprint is part of the [`PlanKey`], so
    /// reordered plans never alias baseline plans; results are
    /// bit-identical either way — the plan un-permutes its output.
    pub reorder: ReorderStrategy,
}

impl Default for ServiceConfig {
    /// One Titan Xp worker (the paper's primary target) and room for 32
    /// cached plans.
    fn default() -> Self {
        ServiceConfig {
            devices: vec![DeviceConfig::titan_xp()],
            cache_capacity: 32,
            queue_capacity: None,
            registry: None,
            estimator: None,
            reorder: ReorderStrategy::None,
        }
    }
}

impl ServiceConfig {
    /// `workers` identical workers on one device model.
    pub fn uniform(device: DeviceConfig, workers: usize, cache_capacity: usize) -> Self {
        ServiceConfig {
            devices: vec![device; workers.max(1)],
            cache_capacity,
            queue_capacity: None,
            registry: None,
            estimator: None,
            reorder: ReorderStrategy::None,
        }
    }

    /// Use `registry` for all service instruments (builder-style).
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Build plans with the sampling estimator instead of exact
    /// precalculation (builder-style).
    pub fn with_estimator(mut self, estimator: EstimatorConfig) -> Self {
        self.estimator = Some(estimator);
        self
    }

    /// Bound the job queue at `capacity` entries (builder-style).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Reorder A's rows under `strategy` before planning (builder-style).
    pub fn with_reorder(mut self, strategy: ReorderStrategy) -> Self {
        self.reorder = strategy;
        self
    }
}

/// Why [`SpgemmService::try_submit`] refused a job (the job comes back).
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded queue is at capacity.
    QueueFull(JobRequest),
    /// The service is already draining.
    Draining(JobRequest),
}

/// Why [`SpgemmService::try_submit_chain`] refused a chain (it comes back).
/// Boxed: a chain request is far bigger than the `Ok` arm of a submit.
#[derive(Debug)]
pub enum ChainSubmitError {
    /// The bounded queue is at capacity.
    QueueFull(Box<ChainRequest>),
    /// The service is already draining.
    Draining(Box<ChainRequest>),
}

impl ChainSubmitError {
    /// The refused chain.
    pub fn into_chain(self) -> ChainRequest {
        match self {
            ChainSubmitError::QueueFull(chain) | ChainSubmitError::Draining(chain) => *chain,
        }
    }
}

impl std::fmt::Display for ChainSubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainSubmitError::QueueFull(chain) => {
                write!(f, "queue full, chain {} rejected", chain.id)
            }
            ChainSubmitError::Draining(chain) => {
                write!(f, "service draining, chain {} rejected", chain.id)
            }
        }
    }
}

impl SubmitError {
    /// The refused job.
    pub fn into_job(self) -> JobRequest {
        match self {
            SubmitError::QueueFull(job) | SubmitError::Draining(job) => job,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(job) => write!(f, "queue full, job {} rejected", job.id),
            SubmitError::Draining(job) => write!(f, "service draining, job {} rejected", job.id),
        }
    }
}

/// Everything a finished batch reports.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Successful jobs, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Successful chains, in submission order. Failed chains land in
    /// `failures` alongside failed jobs (ids share one namespace).
    pub chains: Vec<ChainOutcome>,
    /// Failed jobs and chains, in submission order.
    pub failures: Vec<JobError>,
    /// The aggregate report.
    pub stats: ServiceStats,
}

/// What one queue slot holds: a single multiplication or a whole chain.
enum WorkItem {
    Job(JobRequest),
    Chain(Box<ChainRequest>),
}

struct QueuedJob {
    request: WorkItem,
    enqueued: Instant,
}

// Boxed: an outcome (with its result matrix) dwarfs an error.
enum Completion {
    Ok(Box<JobOutcome>),
    Chain(Box<ChainOutcome>),
    Err(JobError),
}

struct WorkerReport {
    worker: usize,
    device: String,
    jobs: usize,
    busy_ms: f64,
}

/// Instrument handles shared by the submission side and every worker.
struct ServiceInstruments {
    registry: Arc<Registry>,
    submitted: Counter,
    completed: Counter,
    failed: Counter,
    /// Queue depth over time — scheduling-dependent, hence timing-flagged.
    queue_depth: Gauge,
    /// High-water queue depth — also scheduling-dependent.
    queue_max_depth: Gauge,
    /// Wall-clock queue wait per job — the "queue" stage of the lifecycle.
    queue_wait: Histogram,
    /// Pre-registered `br_chain_*` families, updated by chain steps.
    chain: ChainInstruments,
}

impl ServiceInstruments {
    fn new(registry: Arc<Registry>) -> Self {
        let submitted = registry.counter(
            "br_jobs_submitted_total",
            "Jobs accepted into the service queue.",
            &[],
        );
        let completed = registry.counter(
            "br_jobs_completed_total",
            "Jobs that finished successfully.",
            &[],
        );
        let failed = registry.counter("br_jobs_failed_total", "Jobs that failed.", &[]);
        let queue_depth = registry.timing_gauge(
            "br_queue_depth",
            "Jobs waiting for a worker, sampled at push/pop (scheduling-dependent).",
            &[],
        );
        let queue_max_depth = registry.timing_gauge(
            "br_queue_max_depth",
            "Highest queue depth observed (scheduling-dependent).",
            &[],
        );
        let queue_wait = registry.timing_histogram(
            "br_job_queue_wait_ns",
            "Wall-clock nanoseconds a job waited in the queue.",
            &[],
        );
        let chain = chain::register_chain_instruments(&registry);
        ServiceInstruments {
            registry,
            submitted,
            completed,
            failed,
            queue_depth,
            queue_max_depth,
            queue_wait,
            chain,
        }
    }
}

/// A running worker pool. Submit jobs, then [`drain`](Self::drain) to
/// collect all results and the final report.
pub struct SpgemmService {
    queue: Arc<JobQueue<QueuedJob>>,
    cache: Arc<PlanCache>,
    instruments: Arc<ServiceInstruments>,
    workers: Vec<JoinHandle<WorkerReport>>,
    results: mpsc::Receiver<Completion>,
    started: Instant,
    submitted: usize,
}

impl SpgemmService {
    /// Spawns the worker pool and returns a service accepting submissions.
    pub fn start(config: ServiceConfig) -> Self {
        let registry = config
            .registry
            .clone()
            .unwrap_or_else(|| Arc::new(Registry::new()));
        let queue: Arc<JobQueue<QueuedJob>> = Arc::new(match config.queue_capacity {
            Some(capacity) => JobQueue::bounded(capacity),
            None => JobQueue::new(),
        });
        let cache = Arc::new(PlanCache::with_registry(
            config.cache_capacity,
            registry.clone(),
        ));
        let instruments = Arc::new(ServiceInstruments::new(registry));
        let (tx, rx) = mpsc::channel();
        let workers = config
            .devices
            .into_iter()
            .enumerate()
            .map(|(index, device)| {
                let queue = queue.clone();
                let cache = cache.clone();
                let instruments = instruments.clone();
                let tx = tx.clone();
                let estimator = config.estimator;
                let reorder = config.reorder;
                thread::Builder::new()
                    .name(format!("br-service-worker-{index}"))
                    .spawn(move || {
                        worker_loop(
                            index,
                            device,
                            queue,
                            cache,
                            instruments,
                            estimator,
                            reorder,
                            tx,
                        )
                    })
                    .expect("failed to spawn service worker")
            })
            .collect();
        SpgemmService {
            queue,
            cache,
            instruments,
            workers,
            results: rx,
            started: Instant::now(),
            submitted: 0,
        }
    }

    /// Enqueues a job; `false` if the service is draining or the bounded
    /// queue is full (see [`try_submit`](Self::try_submit) for the typed
    /// rejection that hands the job back).
    pub fn submit(&mut self, job: JobRequest) -> bool {
        self.try_submit(job).is_ok()
    }

    /// Non-blocking admission into the service queue.
    pub fn try_submit(&mut self, job: JobRequest) -> Result<(), SubmitError> {
        let registry = self.instruments.registry.clone();
        let _span = registry.span("job/submit");
        match self.push_item(WorkItem::Job(job)) {
            Ok(()) => Ok(()),
            Err(PushError::Full(WorkItem::Job(job))) => Err(SubmitError::QueueFull(job)),
            Err(PushError::Closed(WorkItem::Job(job))) => Err(SubmitError::Draining(job)),
            Err(_) => unreachable!("a refused job push hands back the job"),
        }
    }

    /// Enqueues a chain; `false` if the service is draining or the bounded
    /// queue is full. A chain occupies one queue slot and runs to
    /// completion on one worker, step by step.
    pub fn submit_chain(&mut self, chain: ChainRequest) -> bool {
        self.try_submit_chain(chain).is_ok()
    }

    /// Non-blocking admission of a chain into the service queue.
    pub fn try_submit_chain(&mut self, chain: ChainRequest) -> Result<(), ChainSubmitError> {
        let registry = self.instruments.registry.clone();
        let _span = registry.span("chain/submit");
        match self.push_item(WorkItem::Chain(Box::new(chain))) {
            Ok(()) => Ok(()),
            Err(PushError::Full(WorkItem::Chain(chain))) => Err(ChainSubmitError::QueueFull(chain)),
            Err(PushError::Closed(WorkItem::Chain(chain))) => {
                Err(ChainSubmitError::Draining(chain))
            }
            Err(_) => unreachable!("a refused chain push hands back the chain"),
        }
    }

    fn push_item(&mut self, item: WorkItem) -> Result<(), PushError<WorkItem>> {
        match self.queue.try_push(QueuedJob {
            request: item,
            enqueued: Instant::now(),
        }) {
            Ok(depth) => {
                self.submitted += 1;
                self.instruments.submitted.inc();
                self.instruments.queue_depth.set_u64(depth as u64);
                Ok(())
            }
            Err(PushError::Full(queued)) => Err(PushError::Full(queued.request)),
            Err(PushError::Closed(queued)) => Err(PushError::Closed(queued.request)),
        }
    }

    /// Shared plan cache (inspectable mid-run).
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The registry holding this service's instruments (and its cache's).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.instruments.registry
    }

    /// Jobs currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Test hook: poison the queue mutex by panicking inside its critical
    /// section, to prove the service keeps draining afterwards.
    #[doc(hidden)]
    pub fn poison_queue_for_test(&self) {
        self.queue.poison_for_test();
    }

    /// Runs a whole batch: submit everything, drain, report. On a bounded
    /// queue (`queue_capacity`), jobs refused by admission control appear
    /// in `failures` with a "queue full" message instead of vanishing.
    pub fn run_batch(config: ServiceConfig, jobs: Vec<JobRequest>) -> BatchOutcome {
        let mut service = Self::start(config);
        let mut rejected = Vec::new();
        for job in jobs {
            if let Err(err) = service.try_submit(job) {
                let message = err.to_string();
                let job = err.into_job();
                rejected.push(JobError {
                    id: job.id,
                    label: job.label,
                    message,
                });
            }
        }
        let mut batch = service.drain();
        if !rejected.is_empty() {
            batch.stats.failures += rejected.len();
            batch.failures.extend(rejected);
            batch.failures.sort_by_key(|f| f.id);
        }
        batch
    }

    /// Runs a batch of chains: submit everything, drain, report. Chains
    /// refused by admission control land in `failures` like rejected jobs.
    pub fn run_chains(config: ServiceConfig, chains: Vec<ChainRequest>) -> BatchOutcome {
        let mut service = Self::start(config);
        let mut rejected = Vec::new();
        for chain in chains {
            if let Err(err) = service.try_submit_chain(chain) {
                let message = err.to_string();
                let chain = err.into_chain();
                rejected.push(JobError {
                    id: chain.id,
                    label: chain.label,
                    message,
                });
            }
        }
        let mut batch = service.drain();
        if !rejected.is_empty() {
            batch.stats.failures += rejected.len();
            batch.failures.extend(rejected);
            batch.failures.sort_by_key(|f| f.id);
        }
        batch
    }

    /// Closes the queue, waits for every worker to finish, and assembles
    /// the batch report.
    pub fn drain(self) -> BatchOutcome {
        let SpgemmService {
            queue,
            cache,
            instruments,
            workers,
            results,
            started,
            submitted,
        } = self;
        queue.close();
        let reports: Vec<WorkerReport> = workers
            .into_iter()
            .map(|h| h.join().expect("service worker panicked"))
            .collect();
        instruments
            .queue_max_depth
            .set_u64(queue.max_depth() as u64);
        let mut outcomes = Vec::with_capacity(submitted);
        let mut chains = Vec::new();
        let mut failures = Vec::new();
        while let Ok(done) = results.try_recv() {
            match done {
                Completion::Ok(outcome) => outcomes.push(*outcome),
                Completion::Chain(outcome) => chains.push(*outcome),
                Completion::Err(err) => failures.push(err),
            }
        }
        outcomes.sort_by_key(|o| o.id);
        chains.sort_by_key(|c| c.id);
        failures.sort_by_key(|f| f.id);
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let worker_stats = reports
            .into_iter()
            .map(|r| WorkerStats {
                worker: r.worker,
                device: r.device,
                jobs: r.jobs,
                busy_ms: r.busy_ms,
                utilization: if wall_ms > 0.0 {
                    (r.busy_ms / wall_ms).min(1.0)
                } else {
                    0.0
                },
            })
            .collect();
        let stats = ServiceStats::from_outcomes(
            &outcomes,
            failures.len(),
            wall_ms,
            cache.stats(),
            queue.max_depth(),
            worker_stats,
        );
        BatchOutcome {
            outcomes,
            chains,
            failures,
            stats,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    index: usize,
    device: DeviceConfig,
    queue: Arc<JobQueue<QueuedJob>>,
    cache: Arc<PlanCache>,
    instruments: Arc<ServiceInstruments>,
    estimator: Option<EstimatorConfig>,
    reorder: ReorderStrategy,
    tx: mpsc::Sender<Completion>,
) -> WorkerReport {
    let sim = GpuSimulator::new(device.clone());
    // Per-worker merge scratch: jobs on this worker reuse the same warmed
    // accumulators, so steady-state merging allocates nothing per row.
    let pool = ScratchPool::new();
    let mut jobs = 0usize;
    let mut busy_ms = 0.0f64;
    while let Some(queued) = queue.pop() {
        instruments.queue_depth.set_u64(queue.depth() as u64);
        instruments
            .queue_wait
            .observe(queued.enqueued.elapsed().as_nanos() as u64);
        let queue_ms = queued.enqueued.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let done = match queued.request {
            WorkItem::Job(job) => execute_job(
                index,
                &device,
                &sim,
                &cache,
                &instruments,
                &pool,
                estimator,
                reorder,
                job,
                queue_ms,
                t0,
            ),
            WorkItem::Chain(chain_request) => match chain::execute_chain(
                index,
                &device,
                &sim,
                &cache,
                &pool,
                estimator,
                reorder,
                &instruments.chain,
                &instruments.registry,
                *chain_request,
                queue_ms,
            ) {
                Ok(outcome) => Completion::Chain(outcome),
                Err(err) => Completion::Err(err),
            },
        };
        busy_ms += t0.elapsed().as_secs_f64() * 1e3;
        jobs += 1;
        match &done {
            Completion::Ok(_) | Completion::Chain(_) => instruments.completed.inc(),
            Completion::Err(_) => instruments.failed.inc(),
        }
        if tx.send(done).is_err() {
            break; // collector is gone; nothing left to report to
        }
    }
    WorkerReport {
        worker: index,
        device: device.name,
        jobs,
        busy_ms,
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_job(
    worker: usize,
    device: &DeviceConfig,
    sim: &GpuSimulator,
    cache: &PlanCache,
    instruments: &ServiceInstruments,
    pool: &ScratchPool<f64>,
    estimator: Option<EstimatorConfig>,
    reorder: ReorderStrategy,
    job: JobRequest,
    queue_ms: f64,
    t0: Instant,
) -> Completion {
    let registry = &instruments.registry;
    let job_span = registry.span("job");
    let fail = |message: String| {
        Completion::Err(JobError {
            id: job.id,
            label: job.label.clone(),
            message,
        })
    };
    // `from_shared` bumps the job's `Arc`s instead of deep-cloning A, B,
    // and the CSC copy per job.
    let ctx = match ProblemContext::from_shared(job.a.clone(), job.b.clone()) {
        Ok(ctx) => ctx,
        Err(e) => return fail(format!("invalid operands: {e}")),
    };
    let key = PlanKey::with_options(
        ctx.signature(),
        &device.name,
        &job.config,
        estimator.as_ref(),
        reorder,
    );
    // Single-flight: concurrent workers racing on the same absent key
    // produce exactly one build (one miss) and one hit per other job, so
    // the cache counters in the batch report don't depend on worker count
    // or scheduling.
    let (plan, cache_hit) = {
        let _plan_span = registry.span("plan");
        cache.get_or_build(&key, || {
            Arc::new(match estimator {
                Some(est) => ReorgPlan::build_estimated_with_reorder(
                    &ctx,
                    &job.config,
                    device,
                    &est,
                    reorder,
                ),
                None => ReorgPlan::build_with_reorder(&ctx, &job.config, device, reorder),
            })
        })
    };
    let mode = if cache_hit {
        PlanMode::Cached
    } else {
        PlanMode::Cold
    };
    let run = {
        let _exec_span = registry.span("execute");
        match plan.execute_with_scratch(sim, &ctx, mode, Some(pool)) {
            Ok(run) => run,
            Err(e) => return fail(format!("execution failed: {e}")),
        }
    };
    drop(job_span);
    Completion::Ok(Box::new(JobOutcome {
        id: job.id,
        label: job.label,
        worker,
        device: device.name.clone(),
        cache_hit,
        total_ms: run.total_ms,
        precalc_ms: run.phase_ms("precalc"),
        expansion_ms: run.phase_ms("expansion"),
        merge_ms: run.phase_ms("merge"),
        preprocess_ms: run.preprocess_ms,
        queue_ms,
        host_ms: t0.elapsed().as_secs_f64() * 1e3,
        gflops: run.gflops(),
        nnz_c: run.result.nnz(),
        stats: run.stats,
        result: run.result,
    }))
}
