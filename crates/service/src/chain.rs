//! Chain jobs: multi-step [`br_workloads::ChainProgram`]s executed through
//! the plan-cached service stack.
//!
//! A [`ChainRequest`] carries a whole program (iterated squaring, triangle
//! counting, Markov clustering, the Galerkin triple product, or a generic
//! parsed spec) plus its `Arc`-shared input matrices. [`execute_chain`]
//! runs it step by step on one worker: every step goes through the *same*
//! plan path as a standalone job — [`ProblemContext::from_shared`] →
//! [`PlanKey::with_options`] → [`PlanCache::get_or_build`] →
//! [`ReorgPlan::execute_with_scratch`] — so each step gets its own
//! estimator/reorder decision and its own cache hit or miss. Steps that
//! repeat an operand structure already planned (the Galerkin refresh
//! products, repeats of a converged Markov iterate) hit the cache;
//! structure-churning steps (iterated squaring) miss every time.
//!
//! Instrumentation: [`register_chain_instruments`] pre-registers the
//! `br_chain_*` families — steps executed, per-step plan-cache hits and
//! misses, a structure-churn counter (steps whose operand structures were
//! first seen within the chain), and a fill-in histogram — so expositions
//! show every family at zero before the first chain runs.

use std::sync::Arc;
use std::time::Instant;

use block_reorganizer::plan::{PlanMode, ReorgPlan};
use block_reorganizer::reorder::ReorderStrategy;
use block_reorganizer::ReorganizerConfig;
use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::sim::GpuSimulator;
use br_obs::{Counter, Histogram, Registry};
use br_sparse::CsrMatrix;
use br_spgemm::accum::ScratchPool;
use br_spgemm::context::ProblemContext;
use br_spgemm::estimate::EstimatorConfig;
use br_workloads::{ChainProgram, Workload};

use crate::cache::{PlanCache, PlanKey};
use crate::job::JobError;

/// One multi-step chain request.
#[derive(Debug, Clone)]
pub struct ChainRequest {
    /// Caller-chosen identifier, echoed in the outcome. Chain ids share the
    /// namespace of job ids within one batch.
    pub id: u64,
    /// Human-readable label for reports (workload spec, file stem, …).
    pub label: String,
    /// The program to run.
    pub program: ChainProgram,
    /// Positional input matrices (`program.inputs` order).
    pub inputs: Vec<Arc<CsrMatrix<f64>>>,
    /// Reorganizer configuration applied to every step's plan.
    pub config: ReorganizerConfig,
}

impl ChainRequest {
    /// A canonical-workload request over base matrix `base`, under the
    /// default configuration.
    pub fn workload(id: u64, workload: Workload, base: &CsrMatrix<f64>) -> Self {
        ChainRequest {
            id,
            label: workload.spec(),
            program: workload.program(),
            inputs: workload.prepare_inputs(base),
            config: ReorganizerConfig::default(),
        }
    }

    /// A generic-program request over explicit inputs, under the default
    /// configuration.
    pub fn program(id: u64, program: ChainProgram, inputs: Vec<Arc<CsrMatrix<f64>>>) -> Self {
        ChainRequest {
            id,
            label: program.name.clone(),
            program,
            inputs,
            config: ReorganizerConfig::default(),
        }
    }

    /// Replaces the label (builder-style).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Replaces the configuration (builder-style).
    pub fn with_config(mut self, config: ReorganizerConfig) -> Self {
        self.config = config;
        self
    }
}

/// What one executed chain step reports.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Step index within the program.
    pub index: usize,
    /// Step label from the program.
    pub label: String,
    /// Whether this step's plan came from the cache.
    pub cache_hit: bool,
    /// Execution method the plan selected (`reorganized`, `hash`, …).
    pub method: &'static str,
    /// Simulated end-to-end latency of the step, ms.
    pub total_ms: f64,
    /// Simulated precalculation-kernel time, ms (0 on cache hits).
    pub precalc_ms: f64,
    /// Host-side preprocessing charged to the step, ms (0 on cache hits).
    pub preprocess_ms: f64,
    /// Achieved simulated GFLOPS.
    pub gflops: f64,
    /// `nnz` of the raw product, before post-ops.
    pub product_nnz: usize,
    /// `nnz` of the step output, after post-ops.
    pub output_nnz: usize,
    /// Fill-in of the multiply: `product_nnz * 1000 / nnz(A)`.
    pub fill_in_permille: u64,
    /// Whether the step's operand structures were first seen within this
    /// chain (the chain-local structure-churn signal).
    pub fresh_structure: bool,
}

/// What the service reports for one completed chain.
#[derive(Debug, Clone)]
pub struct ChainOutcome {
    /// Identifier from the request.
    pub id: u64,
    /// Label from the request.
    pub label: String,
    /// Index of the worker that executed the chain.
    pub worker: usize,
    /// Name of the worker's device.
    pub device: String,
    /// Per-step roll-up, in program order.
    pub steps: Vec<StepOutcome>,
    /// Summed simulated latency across all steps, ms.
    pub total_ms: f64,
    /// Wall-clock time the chain spent queued, ms.
    pub queue_ms: f64,
    /// Wall-clock time the worker spent on the chain, ms.
    pub host_ms: f64,
    /// The final step's output.
    pub result: Arc<CsrMatrix<f64>>,
}

impl ChainOutcome {
    /// Steps whose plan came from the cache.
    pub fn cache_hits(&self) -> usize {
        self.steps.iter().filter(|s| s.cache_hit).count()
    }

    /// Steps that built a fresh plan.
    pub fn cache_misses(&self) -> usize {
        self.steps.len() - self.cache_hits()
    }

    /// Steps that introduced operand structures unseen earlier in the
    /// chain.
    pub fn structure_churn(&self) -> usize {
        self.steps.iter().filter(|s| s.fresh_structure).count()
    }
}

/// Handles to the pre-registered `br_chain_*` instrument families.
#[derive(Clone)]
pub struct ChainInstruments {
    /// `br_chain_steps_total` — chain steps executed (one SpGEMM each).
    pub steps: Counter,
    /// `br_chain_step_cache_hits_total` — steps served a cached plan.
    pub cache_hits: Counter,
    /// `br_chain_step_cache_misses_total` — steps that built a plan.
    pub cache_misses: Counter,
    /// `br_chain_structure_churn_total` — steps with chain-fresh operand
    /// structures.
    pub structure_churn: Counter,
    /// `br_chain_fill_in_permille` — per-step fill-in distribution.
    pub fill_in: Histogram,
}

/// Pre-registers every `br_chain_*` family in `registry` (idempotent —
/// re-registration returns the existing cells), so expositions show the
/// families at zero before any chain runs.
pub fn register_chain_instruments(registry: &Registry) -> ChainInstruments {
    ChainInstruments {
        steps: registry.counter(
            "br_chain_steps_total",
            "Chain steps executed (one SpGEMM each).",
            &[],
        ),
        cache_hits: registry.counter(
            "br_chain_step_cache_hits_total",
            "Chain steps whose reorganization plan came from the cache.",
            &[],
        ),
        cache_misses: registry.counter(
            "br_chain_step_cache_misses_total",
            "Chain steps that built a fresh reorganization plan.",
            &[],
        ),
        structure_churn: registry.counter(
            "br_chain_structure_churn_total",
            "Chain steps whose operand structure pair was first seen within the chain.",
            &[],
        ),
        fill_in: registry.histogram(
            "br_chain_fill_in_permille",
            "Per-step fill-in: product nnz relative to the left operand, in permille.",
            &[],
        ),
    }
}

/// Timing/plan metadata the runner threads through
/// [`ChainProgram::execute_with`] per step.
struct StepMeta {
    cache_hit: bool,
    method: &'static str,
    total_ms: f64,
    precalc_ms: f64,
    preprocess_ms: f64,
    gflops: f64,
}

/// Runs one chain on one worker through the plan-cached stack. Every step
/// replicates the standalone-job path exactly, so per-step cache counters
/// and simulated timings mean the same thing they mean for plain jobs.
#[allow(clippy::too_many_arguments)]
pub fn execute_chain(
    worker: usize,
    device: &DeviceConfig,
    sim: &GpuSimulator,
    cache: &PlanCache,
    pool: &ScratchPool<f64>,
    estimator: Option<EstimatorConfig>,
    reorder: ReorderStrategy,
    instruments: &ChainInstruments,
    registry: &Registry,
    request: ChainRequest,
    queue_ms: f64,
) -> Result<Box<ChainOutcome>, JobError> {
    let t0 = Instant::now();
    let chain_span = registry.span("chain");
    let run = request
        .program
        .execute_with(&request.inputs, |_, _, a, b| {
            let ctx = ProblemContext::from_shared(a.clone(), b.clone())
                .map_err(|e| format!("invalid operands: {e}"))?;
            let key = PlanKey::with_options(
                ctx.signature(),
                &device.name,
                &request.config,
                estimator.as_ref(),
                reorder,
            );
            let (plan, cache_hit) = {
                let _plan_span = registry.span("plan");
                cache.get_or_build(&key, || {
                    Arc::new(match estimator {
                        Some(est) => ReorgPlan::build_estimated_with_reorder(
                            &ctx,
                            &request.config,
                            device,
                            &est,
                            reorder,
                        ),
                        None => {
                            ReorgPlan::build_with_reorder(&ctx, &request.config, device, reorder)
                        }
                    })
                })
            };
            let mode = if cache_hit {
                PlanMode::Cached
            } else {
                PlanMode::Cold
            };
            let run = {
                let _exec_span = registry.span("execute");
                plan.execute_with_scratch(sim, &ctx, mode, Some(pool))
                    .map_err(|e| format!("execution failed: {e}"))?
            };
            let meta = StepMeta {
                cache_hit,
                method: plan.method.name(),
                total_ms: run.total_ms,
                precalc_ms: run.phase_ms("precalc"),
                preprocess_ms: run.preprocess_ms,
                gflops: run.gflops(),
            };
            Ok((run.result, meta))
        })
        .map_err(|e: br_workloads::ChainError<String>| JobError {
            id: request.id,
            label: request.label.clone(),
            message: format!("chain failed: {e}"),
        })?;
    drop(chain_span);

    let mut steps = Vec::with_capacity(run.steps.len());
    let mut total_ms = 0.0;
    for record in run.steps {
        instruments.steps.inc();
        if record.meta.cache_hit {
            instruments.cache_hits.inc();
        } else {
            instruments.cache_misses.inc();
        }
        if record.fresh_structure {
            instruments.structure_churn.inc();
        }
        instruments.fill_in.observe(record.fill_in_permille);
        total_ms += record.meta.total_ms;
        steps.push(StepOutcome {
            index: record.index,
            label: record.label,
            cache_hit: record.meta.cache_hit,
            method: record.meta.method,
            total_ms: record.meta.total_ms,
            precalc_ms: record.meta.precalc_ms,
            preprocess_ms: record.meta.preprocess_ms,
            gflops: record.meta.gflops,
            product_nnz: record.product_nnz,
            output_nnz: record.output_nnz,
            fill_in_permille: record.fill_in_permille,
            fresh_structure: record.fresh_structure,
        });
    }
    Ok(Box::new(ChainOutcome {
        id: request.id,
        label: request.label,
        worker,
        device: device.name.clone(),
        steps,
        total_ms,
        queue_ms,
        host_ms: t0.elapsed().as_secs_f64() * 1e3,
        result: run.result,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServiceConfig, SpgemmService};
    use br_datasets::rmat::{rmat, RmatConfig};
    use br_workloads::Workload;

    fn base_matrix(seed: u64) -> CsrMatrix<f64> {
        rmat(RmatConfig::snap_like(7, 6, seed)).to_csr()
    }

    #[test]
    fn galerkin_chain_hits_the_cache_on_refresh_steps() {
        let base = base_matrix(1);
        let request = ChainRequest::workload(0, Workload::Galerkin, &base);
        let batch = SpgemmService::run_chains(ServiceConfig::default(), vec![request]);
        assert!(batch.failures.is_empty(), "{:?}", batch.failures);
        let chain = &batch.chains[0];
        assert_eq!(chain.steps.len(), 4);
        // The refresh products repeat the restrict/coarsen structures with
        // new values, so the value-independent plan keys hit.
        assert_eq!(chain.cache_hits(), 2, "refresh steps must hit");
        assert_eq!(chain.cache_misses(), 2);
        assert_eq!(chain.structure_churn(), 2);
        let hits: Vec<bool> = chain.steps.iter().map(|s| s.cache_hit).collect();
        assert_eq!(hits, vec![false, false, true, true]);
        // Cache hits pay no precalculation and no host preprocessing.
        for s in chain.steps.iter().filter(|s| s.cache_hit) {
            assert_eq!(s.precalc_ms, 0.0, "{}", s.label);
            assert_eq!(s.preprocess_ms, 0.0, "{}", s.label);
        }
    }

    #[test]
    fn squaring_chain_misses_every_step() {
        let base = base_matrix(2);
        let request = ChainRequest::workload(0, Workload::Square { k: 3 }, &base);
        let batch = SpgemmService::run_chains(ServiceConfig::default(), vec![request]);
        assert!(batch.failures.is_empty(), "{:?}", batch.failures);
        let chain = &batch.chains[0];
        assert_eq!(chain.cache_hits(), 0, "every squaring changes structure");
        assert_eq!(chain.cache_misses(), 3);
        assert_eq!(chain.structure_churn(), 3);
    }

    #[test]
    fn chain_results_match_the_sequential_reference_bitwise() {
        let base = base_matrix(3);
        for workload in Workload::canonical() {
            let inputs = workload.prepare_inputs(&base);
            let oracle = workload
                .program()
                .execute_reference(&inputs)
                .expect("reference run");
            let request = ChainRequest::workload(7, workload, &base);
            let batch = SpgemmService::run_chains(ServiceConfig::default(), vec![request]);
            assert!(batch.failures.is_empty(), "{:?}", batch.failures);
            let got = &batch.chains[0].result;
            assert_eq!(got.ptr(), oracle.result.ptr(), "{}", workload.name());
            assert_eq!(got.idx(), oracle.result.idx(), "{}", workload.name());
            assert_eq!(got.val(), oracle.result.val(), "{}", workload.name());
        }
    }

    #[test]
    fn chain_instruments_reflect_step_counters() {
        let registry = Arc::new(Registry::new());
        let base = base_matrix(4);
        let request = ChainRequest::workload(0, Workload::Galerkin, &base);
        let config = ServiceConfig::default().with_registry(registry.clone());
        let batch = SpgemmService::run_chains(config, vec![request]);
        assert!(batch.failures.is_empty(), "{:?}", batch.failures);
        let text = registry.render_prometheus(false);
        assert!(text.contains("br_chain_steps_total 4"), "{text}");
        assert!(text.contains("br_chain_step_cache_hits_total 2"), "{text}");
        assert!(
            text.contains("br_chain_step_cache_misses_total 2"),
            "{text}"
        );
        assert!(text.contains("br_chain_structure_churn_total 2"), "{text}");
        assert!(text.contains("br_chain_fill_in_permille_count 4"), "{text}");
    }

    #[test]
    fn chain_families_are_visible_before_any_chain_runs() {
        let registry = Arc::new(Registry::new());
        let service =
            SpgemmService::start(ServiceConfig::default().with_registry(registry.clone()));
        let text = registry.render_prometheus(false);
        for family in [
            "br_chain_steps_total 0",
            "br_chain_step_cache_hits_total 0",
            "br_chain_step_cache_misses_total 0",
            "br_chain_structure_churn_total 0",
            "br_chain_fill_in_permille_count 0",
        ] {
            assert!(text.contains(family), "missing {family}:\n{text}");
        }
        let batch = service.drain();
        assert!(batch.chains.is_empty());
    }

    #[test]
    fn failed_chain_reports_the_step_that_died() {
        // Mismatched input shape: the prolongator of a *different* size.
        let base = base_matrix(5);
        let mut request = ChainRequest::workload(3, Workload::Galerkin, &base);
        request.inputs[1] = Arc::new(br_workloads::aggregation_prolongator(4, 2));
        let batch = SpgemmService::run_chains(ServiceConfig::default(), vec![request]);
        assert!(batch.chains.is_empty());
        assert_eq!(batch.failures.len(), 1);
        let failure = &batch.failures[0];
        assert_eq!(failure.id, 3);
        assert!(
            failure.message.contains("chain failed"),
            "{}",
            failure.message
        );
        assert!(failure.message.contains("step"), "{}", failure.message);
    }
}
