//! A plan-cache hit must reuse the `RowBins` stored in the plan instead of
//! re-classifying rows (ISSUE 4 satellite: counter-based, deterministic
//! across worker counts).
//!
//! This lives in its own integration-test binary because it reads the
//! process-global classification counter: a single `#[test]` in its own
//! process means no other test's classifications pollute the count.

use std::sync::Arc;

use br_datasets::rmat::{rmat, RmatConfig};
use br_gpu_sim::device::DeviceConfig;
use br_service::prelude::*;
use br_spgemm::accum::classification_runs;

#[test]
fn cache_hits_skip_rebinning_at_every_worker_count() {
    const N: u64 = 8;
    let a = Arc::new(rmat(RmatConfig::graph500(8, 8, 55)).to_csr());
    for workers in [1usize, 2, 4, 8] {
        let jobs: Vec<JobRequest> = (0..N).map(|id| JobRequest::square(id, a.clone())).collect();
        let before = classification_runs();
        let batch = SpgemmService::run_batch(
            ServiceConfig::uniform(DeviceConfig::titan_xp(), workers, 8),
            jobs,
        );
        let classified = classification_runs() - before;
        assert!(batch.failures.is_empty(), "workers={workers}");
        assert_eq!(batch.outcomes.len(), N as usize, "workers={workers}");
        assert_eq!(batch.stats.cache.misses, 1, "workers={workers}");
        assert_eq!(batch.stats.cache.hits, N - 1, "workers={workers}");
        // Rows were classified exactly once — by the single plan build.
        // The N−1 cache hits and all planned executions reuse the stored
        // bins, at any worker count.
        assert_eq!(
            classified, 1,
            "workers={workers}: cache hits must not re-bin rows"
        );
    }
}
