//! End-to-end tests for the spGEMM job service: plan-cache amortization
//! (the ISSUE acceptance criterion) and cold-vs-cached result equality.

use std::sync::Arc;

use block_reorganizer::{BlockReorganizer, ReorganizerConfig};
use br_datasets::registry::{RealWorldRegistry, ScaleFactor};
use br_datasets::rmat::{rmat, RmatConfig};
use br_gpu_sim::device::DeviceConfig;
use br_service::prelude::*;
use br_sparse::CsrMatrix;
use br_spgemm::context::ProblemContext;

fn assert_bit_identical(lhs: &CsrMatrix<f64>, rhs: &CsrMatrix<f64>, what: &str) {
    assert_eq!(lhs.nrows(), rhs.nrows(), "{what}: row count");
    assert_eq!(lhs.ncols(), rhs.ncols(), "{what}: col count");
    assert_eq!(lhs.ptr(), rhs.ptr(), "{what}: row pointers");
    assert_eq!(lhs.idx(), rhs.idx(), "{what}: column indices");
    let lbits: Vec<u64> = lhs.val().iter().map(|v| v.to_bits()).collect();
    let rbits: Vec<u64> = rhs.val().iter().map(|v| v.to_bits()).collect();
    assert_eq!(lbits, rbits, "{what}: values must match bit for bit");
}

/// Cached-plan execution must produce bit-identical C to a cold run — on a
/// registry dataset and on an RMAT instance (ISSUE satellite 4).
#[test]
fn cached_execution_is_bit_identical_to_cold() {
    let registry = RealWorldRegistry::get("as-caida")
        .expect("registry dataset")
        .generate(ScaleFactor::Tiny);
    let random = rmat(RmatConfig::graph500(8, 8, 1234)).to_csr();

    for (name, a) in [("as-caida", registry), ("rmat-8-8", random)] {
        let a = Arc::new(a);
        let batch = SpgemmService::run_batch(
            ServiceConfig::default(),
            vec![
                JobRequest::square(0, a.clone()),
                JobRequest::square(1, a.clone()),
            ],
        );
        assert!(batch.failures.is_empty(), "{name}: {:?}", batch.failures);
        assert_eq!(batch.outcomes.len(), 2, "{name}");
        let cold = &batch.outcomes[0];
        let warm = &batch.outcomes[1];
        assert!(!cold.cache_hit, "{name}: first run must be a miss");
        assert!(warm.cache_hit, "{name}: second run must hit the cache");
        assert_bit_identical(&cold.result, &warm.result, name);

        // And against a plain one-shot pass outside the service.
        let reorg = BlockReorganizer::new(ReorganizerConfig::default());
        let ctx = ProblemContext::new(&a, &a).unwrap();
        let oneshot = reorg.multiply_ctx(&ctx, &DeviceConfig::titan_xp()).unwrap();
        assert_bit_identical(&oneshot.result, &warm.result, name);
    }
}

/// ISSUE acceptance criterion: a batch of N ≥ 8 repeated multiplications
/// reports ≥ 1 cache hit per repeat and a lower mean simulated latency than
/// N cold runs.
#[test]
fn repeated_batch_amortizes_preprocessing() {
    const N: usize = 8;
    let a = Arc::new(rmat(RmatConfig::graph500(9, 8, 7)).to_csr());
    let jobs: Vec<JobRequest> = (0..N as u64)
        .map(|id| JobRequest::square(id, a.clone()))
        .collect();

    // Several workers: the single-flight cache keeps hit/miss counts a
    // function of the job multiset, not of scheduling.
    let config = ServiceConfig::uniform(DeviceConfig::titan_xp(), 4, 8);
    let batch = SpgemmService::run_batch(config, jobs);
    assert!(batch.failures.is_empty(), "{:?}", batch.failures);
    assert_eq!(batch.outcomes.len(), N);
    assert_eq!(
        batch.stats.cache.hits,
        (N - 1) as u64,
        "every repeat after the first reuses the plan"
    );
    assert_eq!(batch.stats.cache.misses, 1);
    let hits = batch.outcomes.iter().filter(|o| o.cache_hit).count();
    assert_eq!(hits, N - 1);

    // Baseline: N independent cold runs of the same multiplication.
    let reorg = BlockReorganizer::new(ReorganizerConfig::default());
    let ctx = ProblemContext::new(&a, &a).unwrap();
    let device = DeviceConfig::titan_xp();
    let cold_mean = (0..N)
        .map(|_| reorg.multiply_ctx(&ctx, &device).unwrap().total_ms)
        .sum::<f64>()
        / N as f64;

    assert!(
        batch.stats.mean_total_ms < cold_mean,
        "cached batch must beat cold runs: batch mean {} ms vs cold mean {} ms",
        batch.stats.mean_total_ms,
        cold_mean
    );
    // Warm jobs skip the precalc kernel and the host preprocessing charge.
    for warm in batch.outcomes.iter().filter(|o| o.cache_hit) {
        assert_eq!(warm.precalc_ms, 0.0);
        assert_eq!(warm.preprocess_ms, 0.0);
    }
}

/// Several workers race on one queue: every job completes exactly once,
/// results stay correct, and the shared cache serves all workers.
#[test]
fn multi_worker_pool_completes_every_job_correctly() {
    const N: u64 = 12;
    let a = Arc::new(rmat(RmatConfig::snap_like(8, 6, 3)).to_csr());
    let b = Arc::new(rmat(RmatConfig::snap_like(8, 6, 4)).to_csr());

    let mut jobs = Vec::new();
    for id in 0..N {
        if id % 2 == 0 {
            jobs.push(JobRequest::square(id, a.clone()));
        } else {
            jobs.push(JobRequest::multiply(id, a.clone(), b.clone()));
        }
    }
    let config = ServiceConfig::uniform(DeviceConfig::titan_xp(), 4, 8);
    let batch = SpgemmService::run_batch(config, jobs);
    assert!(batch.failures.is_empty(), "{:?}", batch.failures);
    assert_eq!(batch.outcomes.len(), N as usize);
    let ids: Vec<u64> = batch.outcomes.iter().map(|o| o.id).collect();
    assert_eq!(ids, (0..N).collect::<Vec<u64>>(), "each job exactly once");

    // Reference results computed serially.
    let reorg = BlockReorganizer::new(ReorganizerConfig::default());
    let device = DeviceConfig::titan_xp();
    let ctx_sq = ProblemContext::new(&a, &a).unwrap();
    let ctx_ab = ProblemContext::new(&a, &b).unwrap();
    let ref_sq = reorg.multiply_ctx(&ctx_sq, &device).unwrap().result;
    let ref_ab = reorg.multiply_ctx(&ctx_ab, &device).unwrap().result;
    for outcome in &batch.outcomes {
        let reference = if outcome.id % 2 == 0 {
            &ref_sq
        } else {
            &ref_ab
        };
        assert_bit_identical(reference, &outcome.result, &outcome.label);
    }
    // Two distinct structures, all workers share one cache. The cache is
    // single-flight, so workers racing on a not-yet-published plan wait for
    // the one builder instead of missing again: exactly one miss per
    // structure, one hit for every other job, at any pool size.
    let cache = batch.stats.cache;
    assert_eq!(cache.hits + cache.misses, N, "one lookup per job");
    assert_eq!(cache.misses, 2, "{cache:?}");
    assert_eq!(cache.hits, N - 2, "{cache:?}");
    assert_eq!(batch.stats.jobs, N as usize);
    let worker_jobs: usize = batch.stats.workers.iter().map(|w| w.jobs).sum();
    assert_eq!(worker_jobs, N as usize);
}

/// A heterogeneous pool (different device models) still answers correctly;
/// plans are cached per device name.
#[test]
fn heterogeneous_devices_cache_plans_per_device() {
    let a = Arc::new(rmat(RmatConfig::graph500(8, 6, 11)).to_csr());
    let jobs: Vec<JobRequest> = (0..8).map(|id| JobRequest::square(id, a.clone())).collect();
    let config = ServiceConfig {
        devices: vec![DeviceConfig::titan_xp(), DeviceConfig::tesla_v100()],
        cache_capacity: 8,
        ..ServiceConfig::default()
    };
    let batch = SpgemmService::run_batch(config, jobs);
    assert!(batch.failures.is_empty(), "{:?}", batch.failures);
    assert_eq!(batch.outcomes.len(), 8);
    // Same structure on two device models ⇒ at most one plan per device.
    assert!(batch.stats.cache.misses <= 2, "{:?}", batch.stats.cache);
    assert!(batch.stats.cache.hits >= 6, "{:?}", batch.stats.cache);
    for pair in batch.outcomes.windows(2) {
        assert_bit_identical(&pair[0].result, &pair[1].result, "device-agnostic C");
    }
}

/// The batch report's cache counters and aggregate simulated metrics are
/// identical at every worker count — the determinism contract the bench
/// suite's service section relies on.
#[test]
fn batch_counters_are_deterministic_across_worker_counts() {
    const N: u64 = 10;
    let a = Arc::new(rmat(RmatConfig::snap_like(8, 6, 21)).to_csr());
    let b = Arc::new(rmat(RmatConfig::snap_like(8, 6, 22)).to_csr());
    let run = |workers: usize| {
        let mut jobs = Vec::new();
        for id in 0..N {
            if id % 3 == 0 {
                jobs.push(JobRequest::square(id, a.clone()));
            } else {
                jobs.push(JobRequest::multiply(id, a.clone(), b.clone()));
            }
        }
        let config = ServiceConfig::uniform(DeviceConfig::titan_xp(), workers, 8);
        SpgemmService::run_batch(config, jobs)
    };
    let baseline = run(1);
    assert!(baseline.failures.is_empty());
    for workers in [2, 4, 8] {
        let batch = run(workers);
        assert_eq!(
            (batch.stats.cache.hits, batch.stats.cache.misses),
            (baseline.stats.cache.hits, baseline.stats.cache.misses),
            "workers={workers}"
        );
        assert_eq!(batch.stats.cache.evictions, 0, "workers={workers}");
        // Which job of a key group runs cold is schedule-dependent, but
        // single-flight fixes the *multiset* of simulated latencies (one
        // cold run per key, warm for the rest), so sorted latencies and the
        // aggregate mean are exact at any worker count.
        let sorted_ms = |b: &br_service::service::BatchOutcome| {
            let mut ms: Vec<u64> = b.outcomes.iter().map(|o| o.total_ms.to_bits()).collect();
            ms.sort_unstable();
            ms
        };
        assert_eq!(sorted_ms(&batch), sorted_ms(&baseline), "workers={workers}");
        for (x, y) in batch.outcomes.iter().zip(&baseline.outcomes) {
            assert_eq!(x.id, y.id);
            assert_bit_identical(&x.result, &y.result, &x.label);
        }
    }
}

/// Satellite (lock discipline): a panic inside the queue's critical section
/// poisons the queue mutex, but every lock acquisition goes through the
/// poison-recovering helper — the service must keep accepting submissions
/// and drain every job.
#[test]
fn service_drains_after_panic_inside_queue_critical_section() {
    let a = Arc::new(rmat(RmatConfig::snap_like(7, 6, 33)).to_csr());
    let mut service = SpgemmService::start(ServiceConfig::uniform(DeviceConfig::titan_xp(), 2, 8));
    for id in 0..3 {
        assert!(service.submit(JobRequest::square(id, a.clone())));
    }
    // Panic while holding the queue mutex (poisons it), then keep going.
    service.poison_queue_for_test();
    for id in 3..6 {
        assert!(
            service.submit(JobRequest::square(id, a.clone())),
            "submissions must survive a poisoned queue mutex"
        );
    }
    let batch = service.drain();
    assert!(batch.failures.is_empty(), "{:?}", batch.failures);
    assert_eq!(batch.outcomes.len(), 6, "all jobs drained after poison");
    let ids: Vec<u64> = batch.outcomes.iter().map(|o| o.id).collect();
    assert_eq!(ids, (0..6).collect::<Vec<u64>>());
}

/// The service's non-timing exposition (cache counters, job counters, span
/// counts) is byte-identical at every worker count: the instruments are
/// pure functions of the job multiset under single-flight.
#[test]
fn service_exposition_is_byte_identical_across_worker_counts() {
    use br_obs::Registry;
    const N: u64 = 8;
    let a = Arc::new(rmat(RmatConfig::snap_like(8, 6, 44)).to_csr());
    let b = Arc::new(rmat(RmatConfig::snap_like(8, 6, 45)).to_csr());
    let run = |workers: usize| {
        let registry = Arc::new(Registry::new());
        let mut jobs = Vec::new();
        for id in 0..N {
            if id % 2 == 0 {
                jobs.push(JobRequest::square(id, a.clone()));
            } else {
                jobs.push(JobRequest::multiply(id, a.clone(), b.clone()));
            }
        }
        let config = ServiceConfig::uniform(DeviceConfig::titan_xp(), workers, 8)
            .with_registry(registry.clone());
        let batch = SpgemmService::run_batch(config, jobs);
        assert!(batch.failures.is_empty(), "{:?}", batch.failures);
        (
            registry.render_prometheus(false),
            registry.render_jsonl(false),
        )
    };
    let (base_prom, base_jsonl) = run(1);
    assert!(
        base_prom.contains("br_jobs_submitted_total 8"),
        "{base_prom}"
    );
    assert!(
        base_prom.contains("br_jobs_completed_total 8"),
        "{base_prom}"
    );
    assert!(base_prom.contains("br_cache_misses_total 2"), "{base_prom}");
    assert!(base_prom.contains("br_cache_hits_total 6"), "{base_prom}");
    assert!(
        base_prom.contains("br_span_total{path=\"job/plan\"} 8"),
        "{base_prom}"
    );
    // Timing-flagged families must be absent from the deterministic view.
    assert!(!base_prom.contains("br_queue_depth"), "{base_prom}");
    assert!(!base_prom.contains("br_job_queue_wait_ns"), "{base_prom}");
    for workers in [2, 4] {
        assert_eq!((base_prom.clone(), base_jsonl.clone()), run(workers));
    }
}

/// Failures are reported, not panicked: mismatched shapes surface in
/// `failures` with the offending job's id, and good jobs still complete.
#[test]
fn bad_jobs_fail_gracefully_without_poisoning_the_batch() {
    let a = Arc::new(rmat(RmatConfig::graph500(7, 6, 5)).to_csr());
    let skinny = Arc::new(CsrMatrix::<f64>::zeros(3, 3));
    let jobs = vec![
        JobRequest::square(0, a.clone()),
        JobRequest::multiply(1, a.clone(), skinny), // shape mismatch
        JobRequest::square(2, a.clone()),
    ];
    let batch = SpgemmService::run_batch(ServiceConfig::default(), jobs);
    assert_eq!(batch.outcomes.len(), 2);
    assert_eq!(batch.failures.len(), 1);
    assert_eq!(batch.failures[0].id, 1);
    assert_eq!(batch.stats.failures, 1);
    assert_bit_identical(
        &batch.outcomes[0].result,
        &batch.outcomes[1].result,
        "surviving jobs",
    );
}

/// Estimation-based planning, end to end: an estimator-enabled service
/// returns results bit-identical to the exact service (the estimate may
/// change the method and the bin thresholds, never the numbers), caches
/// its estimated plans like the exact path does, and the estimator
/// fingerprint in the plan key keeps the two flavors from aliasing.
#[test]
fn estimator_enabled_service_matches_exact_results() {
    use br_spgemm::estimate::EstimatorConfig;
    let a = Arc::new(rmat(RmatConfig::graph500(9, 8, 77)).to_csr());
    let jobs = |n: u64| -> Vec<JobRequest> {
        (0..n).map(|id| JobRequest::square(id, a.clone())).collect()
    };

    let exact = SpgemmService::run_batch(ServiceConfig::default(), jobs(3));
    let estimated = SpgemmService::run_batch(
        ServiceConfig::default().with_estimator(EstimatorConfig::default()),
        jobs(3),
    );
    assert!(exact.failures.is_empty(), "{:?}", exact.failures);
    assert!(estimated.failures.is_empty(), "{:?}", estimated.failures);
    for (e, s) in exact.outcomes.iter().zip(&estimated.outcomes) {
        assert_bit_identical(&e.result, &s.result, "estimated vs exact service");
    }
    // Estimated plans amortize exactly like exact ones: one miss, then hits.
    assert_eq!(
        estimated.stats.cache.misses, 1,
        "{:?}",
        estimated.stats.cache
    );
    assert_eq!(estimated.stats.cache.hits, 2, "{:?}", estimated.stats.cache);
}

/// Reordering is invisible to callers: a service configured with any
/// row-reordering strategy returns results bit-identical to the baseline
/// service (plans un-permute their output), and the strategy fingerprint
/// in the plan key keeps reordered plans from aliasing baseline plans.
#[test]
fn reordered_service_matches_baseline_results() {
    use block_reorganizer::reorder::ReorderStrategy;
    let a = Arc::new(rmat(RmatConfig::graph500(9, 8, 41)).to_csr());
    let jobs = |n: u64| -> Vec<JobRequest> {
        (0..n).map(|id| JobRequest::square(id, a.clone())).collect()
    };

    let baseline = SpgemmService::run_batch(ServiceConfig::default(), jobs(3));
    assert!(baseline.failures.is_empty(), "{:?}", baseline.failures);
    for strategy in [
        ReorderStrategy::Degree,
        ReorderStrategy::Rcm,
        ReorderStrategy::Cluster,
        ReorderStrategy::Auto,
    ] {
        let reordered =
            SpgemmService::run_batch(ServiceConfig::default().with_reorder(strategy), jobs(3));
        assert!(
            reordered.failures.is_empty(),
            "{strategy:?}: {:?}",
            reordered.failures
        );
        for (b, r) in baseline.outcomes.iter().zip(&reordered.outcomes) {
            assert_bit_identical(&b.result, &r.result, strategy.name());
        }
        // Reordered plans amortize like baseline ones: one miss, then hits.
        assert_eq!(reordered.stats.cache.misses, 1, "{strategy:?}");
        assert_eq!(reordered.stats.cache.hits, 2, "{strategy:?}");
    }
}

/// ISSUE satellite: plan-cache eviction stress. A structure-churning mix —
/// one iterated-squaring chain (every step a fresh structure) plus distinct
/// one-shot squarings — through a cache far smaller than the number of
/// distinct keys. Every lookup misses and every insert beyond capacity
/// evicts, so hits/misses/evictions are an exact function of the submitted
/// multiset — independent of worker count and scheduling — and the results
/// stay byte-identical at 1, 2, 4, and 8 workers.
#[test]
fn eviction_stress_counters_are_deterministic_across_worker_counts() {
    use br_workloads::Workload;

    const CAPACITY: usize = 2;
    const CHAIN_STEPS: u64 = 3; // square:3 → A², A⁴, A⁸ — all fresh structures
    const SINGLES: u64 = 7;

    let chain_base = Arc::new(rmat(RmatConfig::snap_like(7, 6, 900)).to_csr());
    let singles: Vec<Arc<CsrMatrix<f64>>> = (0..SINGLES)
        .map(|k| Arc::new(rmat(RmatConfig::snap_like(7, 6, 901 + k)).to_csr()))
        .collect();

    let mut baseline: Option<(Vec<CsrMatrix<f64>>, CsrMatrix<f64>)> = None;
    for workers in [1usize, 2, 4, 8] {
        let config = ServiceConfig::uniform(DeviceConfig::titan_xp(), workers, CAPACITY);
        let mut service = SpgemmService::start(config);
        for (k, a) in singles.iter().enumerate() {
            assert!(service.submit(JobRequest::square(k as u64, a.clone())));
        }
        assert!(service.submit_chain(ChainRequest::workload(
            SINGLES,
            Workload::Square {
                k: CHAIN_STEPS as usize
            },
            &chain_base,
        )));
        let batch = service.drain();
        assert!(
            batch.failures.is_empty(),
            "{workers} workers: {:?}",
            batch.failures
        );
        assert_eq!(batch.outcomes.len(), SINGLES as usize);
        assert_eq!(batch.chains.len(), 1);

        // Every key is distinct → all misses; every insert past capacity
        // evicts exactly one plan.
        let misses = SINGLES + CHAIN_STEPS;
        let stats = &batch.stats.cache;
        assert_eq!(
            (stats.hits, stats.misses, stats.evictions, stats.entries),
            (0, misses, misses - CAPACITY as u64, CAPACITY),
            "{workers} workers"
        );
        assert_eq!(batch.chains[0].cache_hits(), 0, "{workers} workers");
        assert_eq!(
            batch.chains[0].structure_churn(),
            CHAIN_STEPS as usize,
            "{workers} workers"
        );

        let job_results: Vec<CsrMatrix<f64>> =
            batch.outcomes.iter().map(|o| o.result.clone()).collect();
        let chain_result = (*batch.chains[0].result).clone();
        match &baseline {
            None => baseline = Some((job_results, chain_result)),
            Some((jobs0, chain0)) => {
                for (l, r) in jobs0.iter().zip(&job_results) {
                    assert_bit_identical(l, r, &format!("{workers}-worker job result"));
                }
                assert_bit_identical(chain0, &chain_result, "chain result across worker counts");
            }
        }
    }
}
