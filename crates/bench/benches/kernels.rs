//! Criterion microbenchmarks of the real (host-executed) computational
//! kernels: the CPU oracle, the three numeric mergers, symbolic analysis,
//! generators, classification/splitting preprocessing, and the L2
//! simulator itself.
//!
//! These measure *wall-clock Rust performance* of the library (the thing a
//! downstream user of the crates cares about), complementing the simulated
//! GPU times the fig/table binaries report.

use block_reorganizer::classify::Classification;
use block_reorganizer::config::ReorganizerConfig;
use block_reorganizer::split::{plan_splits, SplitPlan};
use br_datasets::chung_lu::{chung_lu, ChungLuConfig};
use br_datasets::rmat::{rmat, RmatConfig};
use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::l2cache::L2Cache;
use br_gpu_sim::trace::{AccessPattern, MemSegment, MemoryLayout};
use br_sparse::ops::{block_products, spgemm_gustavson, symbolic_nnz};
use br_sparse::CsrMatrix;
use br_spgemm::context::ProblemContext;
use br_spgemm::numeric::{spgemm_dense_spa, spgemm_hash, spgemm_sort_reduce};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn skewed_input() -> CsrMatrix<f64> {
    chung_lu(ChungLuConfig::social(8_000, 64_000, 42)).to_csr()
}

fn regular_input() -> CsrMatrix<f64> {
    rmat(RmatConfig::uniform(13, 8, 42)).to_csr()
}

fn bench_numeric_mergers(c: &mut Criterion) {
    let a = skewed_input();
    let mut g = c.benchmark_group("numeric-mergers");
    g.sample_size(10);
    g.bench_function("dense-spa", |b| {
        b.iter(|| spgemm_dense_spa(black_box(&a), black_box(&a)).unwrap())
    });
    g.bench_function("sort-reduce", |b| {
        b.iter(|| spgemm_sort_reduce(black_box(&a), black_box(&a)).unwrap())
    });
    g.bench_function("hash", |b| {
        b.iter(|| spgemm_hash(black_box(&a), black_box(&a)).unwrap())
    });
    g.finish();
}

fn bench_symbolic(c: &mut Criterion) {
    let a = skewed_input();
    let mut g = c.benchmark_group("symbolic");
    g.bench_function("block-products", |b| {
        b.iter(|| block_products(black_box(&a), black_box(&a)).unwrap())
    });
    g.bench_function("symbolic-nnz", |b| {
        b.iter(|| symbolic_nnz(black_box(&a), black_box(&a)).unwrap())
    });
    g.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.sample_size(10);
    g.bench_function("rmat-scale13-ef8", |b| {
        b.iter(|| rmat(RmatConfig::graph500(13, 8, 7)))
    });
    g.bench_function("chung-lu-8k-64k", |b| {
        b.iter(|| chung_lu(ChungLuConfig::social(8_000, 64_000, 7)))
    });
    g.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    let a = skewed_input();
    let ctx = ProblemContext::new(&a, &a).unwrap();
    let dev = DeviceConfig::titan_xp();
    let cfg = ReorganizerConfig::default();
    let mut g = c.benchmark_group("reorganizer-preprocessing");
    g.bench_function("classification", |b| {
        b.iter(|| Classification::of(black_box(&ctx), black_box(&cfg)))
    });
    let cls = Classification::of(&ctx, &cfg);
    g.bench_function("split-planning", |b| {
        b.iter(|| {
            plan_splits(
                black_box(&ctx),
                &cls.dominators,
                cfg.split_policy,
                &dev,
                cls.threshold,
            )
        })
    });
    g.bench_function("split-plan-1M-column", |b| {
        b.iter(|| SplitPlan::new(0, black_box(1_000_000), 64))
    });
    g.finish();
}

fn bench_oracle_by_class(c: &mut Criterion) {
    let skewed = skewed_input();
    let regular = regular_input();
    let mut g = c.benchmark_group("oracle-gustavson");
    g.sample_size(10);
    g.bench_function("skewed-8k", |b| {
        b.iter(|| spgemm_gustavson(black_box(&skewed), black_box(&skewed)).unwrap())
    });
    g.bench_function("regular-8k", |b| {
        b.iter(|| spgemm_gustavson(black_box(&regular), black_box(&regular)).unwrap())
    });
    g.finish();
}

fn bench_l2_simulator(c: &mut Criterion) {
    let dev = DeviceConfig::titan_xp();
    let mut layout = MemoryLayout::new();
    let region = layout.alloc(256 << 20);
    let coalesced = MemSegment {
        region,
        offset: 0,
        bytes: 8 << 20,
        pattern: AccessPattern::Coalesced,
        write: false,
        atomic: false,
    };
    let random = MemSegment {
        region,
        offset: 0,
        bytes: 64 << 20,
        pattern: AccessPattern::Random {
            count: 100_000,
            width: 8,
        },
        write: true,
        atomic: true,
    };
    let mut g = c.benchmark_group("l2-simulator");
    g.bench_function("stream-8MiB-coalesced", |b| {
        b.iter_batched(
            || L2Cache::for_device(&dev),
            |mut l2| l2.stream_segment(black_box(&layout), black_box(&coalesced)),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("scatter-100k-random", |b| {
        b.iter_batched(
            || L2Cache::for_device(&dev),
            |mut l2| l2.stream_segment(black_box(&layout), black_box(&random)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_numeric_mergers,
    bench_symbolic,
    bench_generators,
    bench_preprocessing,
    bench_oracle_by_class,
    bench_l2_simulator
);
criterion_main!(benches);
