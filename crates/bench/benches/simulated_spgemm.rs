//! Criterion benchmarks of the *whole simulated pipeline* per method —
//! how long it takes this library to plan, trace, and replay one spGEMM on
//! the GPU model. This is the cost a user pays per `multiply` call.

use block_reorganizer::{BlockReorganizer, ReorganizerConfig};
use br_datasets::registry::{RealWorldRegistry, ScaleFactor};
use br_gpu_sim::device::DeviceConfig;
use br_spgemm::context::ProblemContext;
use br_spgemm::pipeline::{run_method, SpgemmMethod};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_methods_end_to_end(c: &mut Criterion) {
    let dev = DeviceConfig::titan_xp();
    let spec = RealWorldRegistry::get("emailEnron").expect("registry dataset");
    let a = spec.generate(ScaleFactor::Tiny);
    let ctx = ProblemContext::new(&a, &a).expect("square shapes");

    let mut g = c.benchmark_group("simulated-multiply-emailEnron-tiny");
    g.sample_size(10);
    for m in SpgemmMethod::all() {
        g.bench_function(m.name(), |b| {
            b.iter(|| run_method(black_box(&ctx), m, black_box(&dev)).unwrap())
        });
    }
    g.bench_function("Block-Reorganizer", |b| {
        let pass = BlockReorganizer::new(ReorganizerConfig::default());
        b.iter(|| pass.multiply_ctx(black_box(&ctx), black_box(&dev)).unwrap())
    });
    g.finish();
}

fn bench_context_construction(c: &mut Criterion) {
    let spec = RealWorldRegistry::get("scircuit").expect("registry dataset");
    let a = spec.generate(ScaleFactor::Tiny);
    c.bench_function("problem-context-scircuit-tiny", |b| {
        b.iter(|| ProblemContext::new(black_box(&a), black_box(&a)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_methods_end_to_end,
    bench_context_construction
);
criterion_main!(benches);
