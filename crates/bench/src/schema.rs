//! The versioned `BENCH_<suite>.json` report schema.
//!
//! A report is a snapshot of the simulator's performance counters for a
//! fixed grid of (dataset × method × device) cases plus one service batch,
//! annotated with enough provenance (git SHA, timing-model version, device
//! and reorganizer-config fingerprints) for a later comparison to tell a
//! code regression apart from an intentional model change.
//!
//! Every tracked metric is a pure function of simulated execution — cycle
//! counts, counter-derived rates, and simulated milliseconds — never wall
//! clock, so two runs of the same commit produce byte-identical files
//! (`serde_json`'s writer preserves map insertion order and prints floats
//! with shortest-round-trip text).

use serde::{Deserialize, Serialize};

/// Current schema version. Bump on any breaking change to the report
/// layout; `compare` refuses to diff reports with mismatched versions.
pub const SCHEMA_VERSION: u32 = 1;

/// One complete benchmark report — the unit written to `BENCH_<suite>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Layout version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Suite name (`quick`, `full`, `scaling`).
    pub suite: String,
    /// `git rev-parse HEAD` at run time (`unknown` outside a checkout).
    /// Provenance only — excluded from comparison.
    pub git_sha: String,
    /// [`br_gpu_sim::MODEL_VERSION`] of the simulator that produced the
    /// numbers. A mismatch between baseline and current means cycle
    /// deltas are expected; `compare` reports it as an error.
    pub model_version: u32,
    /// Fingerprint of the `ReorganizerConfig` used for reorganizer cases
    /// (`br_service::cache::config_fingerprint`).
    pub config_fingerprint: u64,
    /// Per-case measurements, in suite definition order.
    pub cases: Vec<CaseReport>,
    /// Plan-cache service batch measurements.
    pub service: ServiceSection,
    /// Estimation-based planning measurements (`estplan` suite): one entry
    /// per plan-building case, recording the planner's decisions and its
    /// modeled cold-plan cost. `None` for suites that don't build plans
    /// directly and in reports written before the section existed — legacy
    /// reports parse with the key absent.
    pub plan: Option<PlanSection>,
    /// Chained-workload measurements (`chain` suite): one entry per
    /// (dataset × canonical workload) chain, each executed step by step
    /// through the plan-cached service path against a fresh per-case
    /// cache — so every hit/miss is intra-chain and a pure function of
    /// the program. `None` for every other suite and in reports written
    /// before chains existed — legacy reports parse with the key absent.
    pub chain: Option<ChainSection>,
    /// Host-side wall-clock measurements of the run itself (worker count,
    /// elapsed time, throughput). `None` in reports written before the
    /// section existed and in runs invoked with `--no-host` (byte-compare
    /// workflows). **Not a tracked metric**: wall clock varies run to run,
    /// so [`mod@crate::compare`] ignores this section entirely.
    pub host: Option<HostSection>,
}

/// One (dataset × method × device) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseReport {
    /// Stable identity: `<dataset>@<scale>/<method>/<device-slug>` —
    /// comparison matches baseline and current cases by this string.
    pub id: String,
    /// Dataset name from the Table II registry.
    pub dataset: String,
    /// Scale label (`tiny`, `default`, `full`, or a divisor).
    pub scale: String,
    /// Method display name (Figure 8 legend spelling).
    pub method: String,
    /// Device marketing name.
    pub device: String,
    /// Fingerprint of the full [`br_gpu_sim::device::DeviceConfig`].
    pub device_fingerprint: u64,
    /// The tracked performance counters.
    pub metrics: CaseMetrics,
}

/// Deterministic performance counters for one case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseMetrics {
    /// Total simulated makespan over all kernels, in core cycles — the
    /// primary regression-gate metric.
    pub makespan_cycles: f64,
    /// Per-phase makespan breakdown, in kernel launch order.
    pub phases: Vec<PhaseMetrics>,
    /// Total simulated time (kernels + preprocessing) in ms.
    pub total_ms: f64,
    /// Worst per-kernel Load Balancing Index (Equation 3; 1.0 = balanced).
    pub lbi: f64,
    /// Aggregate L2 hit rate over all kernels (hits / accesses).
    pub l2_hit_rate: f64,
    /// Aggregate sync-stall ratio (stall cycles / busy cycles).
    pub sync_stall_ratio: f64,
    /// Achieved GFLOPS (Figure 9 metric).
    pub gflops: f64,
    /// FLOP count (`2·nnz(Ĉ)`) — a workload-identity tripwire: it must be
    /// byte-equal between baseline and current.
    pub flops: u64,
    /// `nnz(C)` of the computed result — a correctness tripwire.
    pub result_nnz: u64,
}

/// One kernel phase's share of the makespan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseMetrics {
    /// Kernel/phase name as emitted by the method (e.g. `expansion`,
    /// `merge`, `precalc`).
    pub name: String,
    /// Simulated makespan of this phase in core cycles.
    pub makespan_cycles: f64,
    /// Load Balancing Index of this phase.
    pub lbi: f64,
    /// L2 hit rate of this phase.
    pub l2_hit_rate: f64,
    /// Sync-stall ratio of this phase.
    pub sync_stall_ratio: f64,
}

/// Plan-cache behaviour of the suite's service batch (`br-service`
/// worker pool running repeated jobs). Only counter-derived values are
/// recorded; queue latencies are wall clock and therefore excluded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSection {
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs that failed (must be 0 in a healthy run).
    pub failures: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache evictions.
    pub cache_evictions: u64,
    /// hits / (hits + misses).
    pub cache_hit_rate: f64,
}

/// Estimation-based planning measurements: the `estplan` suite builds one
/// plan per (dataset, flavor) grid point — exact precalculation vs the
/// sampling estimator — and records what the planner decided plus its
/// modeled host cost. Every field is a pure function of the operands'
/// structure and the estimator configuration, so the section byte-compares
/// across runs and thread counts; `compare` gates the `ops` column with
/// [`crate::compare::Thresholds::plan_ops_pct`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSection {
    /// [`EstimatorConfig::fingerprint`](br_spgemm::estimate::EstimatorConfig)
    /// of the estimator setting in effect (0 when estimation is disabled).
    /// Baseline/current skew here is an identity error, like
    /// `config_fingerprint`.
    pub estimator_fingerprint: u64,
    /// Per-case planning records, in suite definition order.
    pub cases: Vec<PlanCaseReport>,
}

/// One plan build's record in the `estplan` suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanCaseReport {
    /// Case identity, same scheme as [`CaseReport::id`].
    pub id: String,
    /// How the plan's workloads were obtained: `exact`, `estimate`, or
    /// `fallback` (estimation attempted, band too wide, exact pass added).
    pub mode: String,
    /// Expansion method the planner chose (`reorganized`, `row-product`,
    /// `outer-product`, `esc`, `hash`).
    pub method: String,
    /// Modeled host operations of the plan build — the deterministic
    /// cold-plan latency metric the CI `plan-bench` job gates on.
    pub ops: u64,
    /// Columns of `A` the estimator sampled (0 on the exact path).
    pub sampled_cols: u64,
    /// Relative confidence-band half-width, in ppm (0 on the exact path).
    pub rel_band_ppm: u64,
}

/// Chained-workload measurements: the `chain` suite runs every canonical
/// [`br_workloads::Workload`] program over each grid dataset and records
/// the per-step plan-cache behaviour plus the simulated per-step makespan.
/// Every field is a pure function of the operands and the program, so the
/// section byte-compares across runs and thread counts; `compare` gates
/// the per-step timings like case metrics and treats any change in the
/// hit/miss/structure pattern as an identity error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainSection {
    /// Per-chain records, in suite definition order.
    pub cases: Vec<ChainCaseReport>,
}

/// One chain's record in the `chain` suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainCaseReport {
    /// Case identity: `<dataset>@<scale>/<workload-spec>/<device-slug>`.
    pub id: String,
    /// Dataset name from the Table II registry.
    pub dataset: String,
    /// Workload spec (`square:3`, `triangle`, `markov:3,0.001`,
    /// `galerkin`).
    pub workload: String,
    /// Per-step roll-up, in program order.
    pub steps: Vec<ChainStepReport>,
    /// Steps whose plan came from the (per-case) cache.
    pub cache_hits: u64,
    /// Steps that built a fresh plan.
    pub cache_misses: u64,
    /// Steps whose operand structures were first seen within the chain.
    pub structure_churn: u64,
    /// Summed simulated latency across all steps, ms.
    pub total_ms: f64,
    /// `nnz` of the chain's final output — a correctness tripwire.
    pub result_nnz: u64,
}

/// One chain step's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainStepReport {
    /// Step label from the program (`square`, `restrict`, …).
    pub label: String,
    /// Whether this step's plan came from the cache.
    pub cache_hit: bool,
    /// Whether the step's operand structures were first seen within the
    /// chain.
    pub fresh_structure: bool,
    /// Execution method the plan selected (`reorganized`, `hash`, …).
    pub method: String,
    /// Simulated end-to-end latency of the step, ms — the per-step
    /// makespan metric `compare` gates.
    pub total_ms: f64,
    /// `nnz` of the raw product, before post-ops.
    pub product_nnz: u64,
    /// `nnz` of the step output, after post-ops.
    pub output_nnz: u64,
    /// Fill-in of the multiply: `product_nnz * 1000 / nnz(A)`.
    pub fill_in_permille: u64,
}

/// Wall-clock diagnostics of the benchmark run itself — the only section
/// of the report that is *not* deterministic. It exists so perf work on the
/// harness is visible (`bench run` prints it), while every comparison and
/// byte-identity check excludes it: `compare` never reads it, and
/// `bench run --no-host` omits it from the file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSection {
    /// Host worker threads the run was configured with.
    pub threads: u64,
    /// Wall-clock duration of the whole suite, ms.
    pub wall_ms: f64,
    /// Grid cases completed per wall-clock second.
    pub cases_per_sec: f64,
    /// Service-batch jobs completed per wall-clock second.
    pub jobs_per_sec: f64,
    /// Adaptive-engine row-bin census over the suite's distinct problems.
    /// `None` in reports written before the adaptive engine existed —
    /// legacy reports parse with the field absent. Like the rest of the
    /// `host` section, never compared.
    pub bins: Option<BinHostStats>,
    /// Size of the process-wide observability registry at the end of the
    /// run (`br_obs::global().totals()`). `None` in reports written before
    /// the obs subsystem existed. Informational only — sample counts vary
    /// with what else ran in the process, so this lives under `host` and
    /// is never compared.
    pub obs: Option<ObsHostStats>,
}

/// Snapshot of the observability registry's size: how many metric
/// families, label-distinct samples, and span events the run recorded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsHostStats {
    /// Registered metric families.
    pub families: u64,
    /// Label-distinct instruments across all families.
    pub samples: u64,
    /// Span enter/exit events buffered across all threads.
    pub span_events: u64,
}

/// Per-bin census of the adaptive host merge engine: how the suite's
/// distinct (dataset, scale) problems' rows and intermediate products
/// split across the tiny/medium/heavy/kway bins under the thresholds in
/// effect. Structure-derived and deterministic, but stored under `host`
/// because it describes the host numeric path, not the simulated device.
///
/// The kway fields and the runs-per-row histogram are `None` in reports
/// written before the k-way tournament bin existed; legacy reports parse
/// with them absent, and `compare` never reads this section either way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinHostStats {
    /// `tiny_max` threshold the census used.
    pub tiny_max: u64,
    /// `heavy_min` threshold the census used.
    pub heavy_min: u64,
    /// Rows handled by the insertion-sorted small buffer.
    pub tiny_rows: u64,
    /// Rows handled by the open-addressing hash table.
    pub medium_rows: u64,
    /// Rows handled by the dense accumulator.
    pub heavy_rows: u64,
    /// Intermediate products expanded by tiny rows.
    pub tiny_products: u64,
    /// Intermediate products expanded by medium rows.
    pub medium_products: u64,
    /// Intermediate products expanded by heavy rows.
    pub heavy_products: u64,
    /// `kway_min` threshold the census used (`u64::MAX` = bin disabled).
    pub kway_min: Option<u64>,
    /// Rows handled by the k-way tournament merge.
    pub kway_rows: Option<u64>,
    /// Intermediate products expanded by kway rows.
    pub kway_products: Option<u64>,
    /// Histogram of runs (A-row nonzeros) per *kway* row in log2 buckets:
    /// `runs_per_row[i]` counts kway rows with `runs in [2^i, 2^(i+1))`.
    /// Sizes the tournament trees the kway bin actually builds.
    pub runs_per_row: Option<Vec<u64>>,
}

impl BenchReport {
    /// Serializes to the canonical on-disk form (pretty, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serialization cannot fail");
        s.push('\n');
        s
    }

    /// Parses a report and validates its schema version.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let report: BenchReport =
            serde_json::from_str(text).map_err(|e| format!("malformed report: {e}"))?;
        if report.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema version {} unsupported (this binary reads version {})",
                report.schema_version, SCHEMA_VERSION
            ));
        }
        Ok(report)
    }

    /// Looks up a case by id.
    pub fn case(&self, id: &str) -> Option<&CaseReport> {
        self.cases.iter().find(|c| c.id == id)
    }
}

/// Best-effort `git rev-parse HEAD`; honors `GITHUB_SHA` when set (CI
/// checkouts can be shallow or detached), else `unknown`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            suite: "quick".to_string(),
            git_sha: "deadbeef".to_string(),
            model_version: 1,
            config_fingerprint: 42,
            cases: vec![CaseReport {
                id: "wiki-Vote@tiny/row-product/titan-xp".to_string(),
                dataset: "wiki-Vote".to_string(),
                scale: "tiny".to_string(),
                method: "row-product".to_string(),
                device: "NVIDIA TITAN Xp".to_string(),
                device_fingerprint: 7,
                metrics: CaseMetrics {
                    makespan_cycles: 123456.0,
                    phases: vec![PhaseMetrics {
                        name: "expansion".to_string(),
                        makespan_cycles: 100000.0,
                        lbi: 1.25,
                        l2_hit_rate: 0.5,
                        sync_stall_ratio: 0.01,
                    }],
                    total_ms: 0.25,
                    lbi: 1.5,
                    l2_hit_rate: 0.625,
                    sync_stall_ratio: 0.02,
                    gflops: 1.75,
                    flops: 1000,
                    result_nnz: 500,
                },
            }],
            service: ServiceSection {
                jobs: 8,
                failures: 0,
                cache_hits: 6,
                cache_misses: 2,
                cache_evictions: 0,
                cache_hit_rate: 0.75,
            },
            plan: None,
            chain: None,
            host: Some(HostSection {
                threads: 4,
                wall_ms: 1234.5,
                cases_per_sec: 2.5,
                jobs_per_sec: 10.0,
                bins: Some(BinHostStats {
                    tiny_max: 16,
                    heavy_min: 2048,
                    tiny_rows: 100,
                    medium_rows: 50,
                    heavy_rows: 3,
                    tiny_products: 800,
                    medium_products: 9000,
                    heavy_products: 70000,
                    kway_min: Some(u64::MAX),
                    kway_rows: Some(0),
                    kway_products: Some(0),
                    runs_per_row: Some(vec![]),
                }),
                obs: Some(ObsHostStats {
                    families: 12,
                    samples: 40,
                    span_events: 256,
                }),
            }),
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let report = sample();
        let text = report.to_json();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text, "re-serialization is stable");
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn legacy_report_without_host_section_still_parses() {
        // Reports written before the `host` section existed (e.g. the
        // checked-in baselines) have no such key: it must read back as
        // `None` under the same schema version, not error.
        let mut report = sample();
        report.host = None;
        let text = report.to_json();
        let legacy = text.replace(",\n  \"host\": null", "");
        assert_ne!(legacy, text, "the host key was present to remove");
        let back = BenchReport::from_json(&legacy).expect("legacy layout parses");
        assert_eq!(back.host, None);
        assert_eq!(back.cases, report.cases);
    }

    #[test]
    fn host_section_roundtrips_when_present() {
        let report = sample();
        assert!(report.host.is_some());
        let back = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.host, report.host);
    }

    #[test]
    fn host_section_without_bins_key_parses_as_none() {
        // Reports written before the adaptive engine existed have a host
        // section but no `bins` key: it must read back as `None`.
        let mut report = sample();
        if let Some(host) = &mut report.host {
            host.bins = None;
        }
        let with_null = report.to_json();
        let legacy = with_null.replace(",\n    \"bins\": null", "");
        assert_ne!(legacy, with_null, "the bins key was present to remove");
        let back = BenchReport::from_json(&legacy).expect("pre-bins host section parses");
        assert_eq!(back.host.as_ref().unwrap().bins, None);
        assert_eq!(back.host.as_ref().unwrap().wall_ms, 1234.5);
    }

    #[test]
    fn bin_stats_without_kway_fields_parse_as_none() {
        // Reports written before the k-way tournament bin existed carry a
        // three-bin census with no kway keys: they must read back as
        // `None`, not error, and the legacy fields must survive.
        let mut report = sample();
        if let Some(bins) = report.host.as_mut().and_then(|h| h.bins.as_mut()) {
            bins.kway_min = None;
            bins.kway_rows = None;
            bins.kway_products = None;
            bins.runs_per_row = None;
        }
        let with_nulls = report.to_json();
        let legacy = with_nulls
            .replace(",\n      \"kway_min\": null", "")
            .replace(",\n      \"kway_rows\": null", "")
            .replace(",\n      \"kway_products\": null", "")
            .replace(",\n      \"runs_per_row\": null", "");
        assert_ne!(legacy, with_nulls, "the kway keys were present to remove");
        let back = BenchReport::from_json(&legacy).expect("pre-kway census parses");
        let bins = back.host.as_ref().unwrap().bins.as_ref().unwrap();
        assert_eq!(bins.kway_min, None);
        assert_eq!(bins.kway_rows, None);
        assert_eq!(bins.kway_products, None);
        assert_eq!(bins.runs_per_row, None);
        assert_eq!(bins.heavy_products, 70000, "legacy fields survive");
    }

    #[test]
    fn host_section_without_obs_key_parses_as_none() {
        // Reports written before the obs subsystem existed have a host
        // section but no `obs` key: it must read back as `None`.
        let mut report = sample();
        if let Some(host) = &mut report.host {
            host.obs = None;
        }
        let with_null = report.to_json();
        let legacy = with_null.replace(",\n    \"obs\": null", "");
        assert_ne!(legacy, with_null, "the obs key was present to remove");
        let back = BenchReport::from_json(&legacy).expect("pre-obs host section parses");
        assert_eq!(back.host.as_ref().unwrap().obs, None);
        assert_eq!(back.host.as_ref().unwrap().wall_ms, 1234.5);
    }

    #[test]
    fn legacy_report_without_plan_section_still_parses() {
        // Reports written before estimation-based planning existed (e.g.
        // the checked-in quick baseline) have no `plan` key: it must read
        // back as `None` under the same schema version, not error.
        let report = sample();
        let text = report.to_json();
        let legacy = text.replace(",\n  \"plan\": null", "");
        assert_ne!(legacy, text, "the plan key was present to remove");
        let back = BenchReport::from_json(&legacy).expect("legacy layout parses");
        assert_eq!(back.plan, None);
        assert_eq!(back.cases, report.cases);
    }

    #[test]
    fn plan_section_roundtrips_when_present() {
        let mut report = sample();
        report.plan = Some(PlanSection {
            estimator_fingerprint: 0xfeed,
            cases: vec![PlanCaseReport {
                id: "harbor@tiny/plan-estimate/titan-xp".to_string(),
                mode: "estimate".to_string(),
                method: "reorganized".to_string(),
                ops: 1234,
                sampled_cols: 64,
                rel_band_ppm: 104_000,
            }],
        });
        let text = report.to_json();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back.plan, report.plan);
        assert_eq!(back.to_json(), text, "re-serialization is stable");
    }

    #[test]
    fn legacy_report_without_chain_section_still_parses() {
        // Reports written before chained workloads existed (e.g. the
        // checked-in quick baseline) have no `chain` key: it must read
        // back as `None` under the same schema version, not error.
        let report = sample();
        let text = report.to_json();
        let legacy = text.replace(",\n  \"chain\": null", "");
        assert_ne!(legacy, text, "the chain key was present to remove");
        let back = BenchReport::from_json(&legacy).expect("legacy layout parses");
        assert_eq!(back.chain, None);
        assert_eq!(back.cases, report.cases);
    }

    #[test]
    fn chain_section_roundtrips_when_present() {
        let mut report = sample();
        report.chain = Some(ChainSection {
            cases: vec![ChainCaseReport {
                id: "harbor@tiny/galerkin/titan-xp".to_string(),
                dataset: "harbor".to_string(),
                workload: "galerkin".to_string(),
                steps: vec![ChainStepReport {
                    label: "restrict".to_string(),
                    cache_hit: false,
                    fresh_structure: true,
                    method: "reorganized".to_string(),
                    total_ms: 0.5,
                    product_nnz: 900,
                    output_nnz: 900,
                    fill_in_permille: 1500,
                }],
                cache_hits: 0,
                cache_misses: 1,
                structure_churn: 1,
                total_ms: 0.5,
                result_nnz: 900,
            }],
        });
        let text = report.to_json();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back.chain, report.chain);
        assert_eq!(back.to_json(), text, "re-serialization is stable");
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut report = sample();
        report.schema_version = SCHEMA_VERSION + 1;
        let err = BenchReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(BenchReport::from_json("{").is_err());
        assert!(BenchReport::from_json("[1,2]").is_err());
    }

    #[test]
    fn case_lookup_by_id() {
        let report = sample();
        assert!(report.case("wiki-Vote@tiny/row-product/titan-xp").is_some());
        assert!(report.case("nope").is_none());
    }
}
