//! Shared benchmark-harness plumbing: argument parsing and the standard
//! per-dataset method sweep used by Figures 8, 9, 15 and 16.

use block_reorganizer::{BlockReorganizer, ReorganizerConfig};
use br_datasets::registry::ScaleFactor;
use br_gpu_sim::device::DeviceConfig;
use br_sparse::{CsrMatrix, Scalar};
use br_spgemm::context::ProblemContext;
use br_spgemm::pipeline::{run_method, SpgemmMethod};

/// Command-line arguments common to every bench binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Surrogate scale.
    pub scale: ScaleFactor,
    /// Optional JSON output path.
    pub json: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: ScaleFactor::Default,
            json: None,
        }
    }
}

/// Parses `--scale tiny|default|full|<divisor>` and `--json <path>` from
/// `std::env::args`. Unknown flags abort with a usage message.
pub fn parse_args() -> BenchArgs {
    let mut out = BenchArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --scale value"));
                out.scale = ScaleFactor::parse(&v)
                    .unwrap_or_else(|| usage(&format!("bad --scale value {v:?}")));
            }
            "--json" => {
                out.json = Some(args.next().unwrap_or_else(|| usage("missing --json path")));
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    out
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: <bin> [--scale tiny|default|full|<divisor>] [--json <path>]");
    std::process::exit(2)
}

/// Times (ms) of all seven Figure 8 methods on one problem, in legend
/// order: row-product, outer-product, cuSPARSE, CUSP, bhSPARSE, MKL,
/// Block-Reorganizer.
pub fn method_times_ms<T: Scalar>(ctx: &ProblemContext<T>, device: &DeviceConfig) -> [f64; 7] {
    let mut out = [0.0f64; 7];
    for (i, m) in SpgemmMethod::all().iter().enumerate() {
        out[i] = run_method(ctx, *m, device)
            .expect("shapes validated by context")
            .total_ms;
    }
    out[6] = BlockReorganizer::new(ReorganizerConfig::default())
        .multiply_ctx(ctx, device)
        .expect("shapes validated by context")
        .total_ms;
    out
}

/// The seven method names in [`method_times_ms`] order.
pub fn method_names() -> [&'static str; 7] {
    [
        "row-product",
        "outer-product",
        "cuSPARSE",
        "CUSP",
        "bhSPARSE",
        "MKL",
        "Block-Reorganizer",
    ]
}

/// Builds the `C = A²` problem context for a matrix.
pub fn square_context<T: Scalar>(a: &CsrMatrix<T>) -> ProblemContext<T> {
    ProblemContext::new(a, a).expect("square product shapes always agree")
}

/// Geometric mean of positive values (the paper's "average speedup").
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let ln_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (ln_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_datasets::rmat::{rmat, RmatConfig};

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn method_sweep_produces_seven_positive_times() {
        let a = rmat(RmatConfig::snap_like(7, 5, 2)).to_csr();
        let ctx = square_context(&a);
        let times = method_times_ms(&ctx, &DeviceConfig::titan_xp());
        assert!(times.iter().all(|&t| t > 0.0), "{times:?}");
    }

    #[test]
    fn names_align_with_sweep_order() {
        assert_eq!(method_names()[0], "row-product");
        assert_eq!(method_names()[6], "Block-Reorganizer");
    }
}
