//! Plain-text table rendering and JSON result dumping for the bench
//! binaries — the "same rows/series the paper reports", printed.

use serde::Serialize;
use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes any serializable result set to a JSON file when `path` is given.
pub fn maybe_write_json<T: Serialize>(path: &Option<String>, value: &T) {
    if let Some(path) = path {
        let json = serde_json::to_string_pretty(value).expect("results are serializable");
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("warning: could not write {path}: {e}");
        });
        println!("\nresults written to {path}");
    }
}

/// Renders a horizontal ASCII bar chart for a labelled series — a terminal
/// stand-in for the paper's figure panels.
pub fn bar_chart(title: &str, series: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let max = series
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let label_w = series.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, v) in series {
        let bars = ((v / max) * width as f64).round() as usize;
        let _ = writeln!(out, "{:<label_w$}  {:>8.2} |{}", label, v, "█".repeat(bars),);
    }
    out
}

/// Renders a compact sparkline for a numeric series (rise-and-fall curves
/// like the Figure 14 limiting sweep).
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let t = ((v - min) / span * 7.0).round() as usize;
            TICKS[t.min(7)]
        })
        .collect()
}

/// Formats a float with 2 decimals (the paper's precision for speedups).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a count with thousands separators for readability.
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        // all rows equal width prefix alignment
        assert_eq!(
            lines[2].find('1'),
            lines[3].find('2'),
            "value column must align"
        );
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart("t", &[("a".to_string(), 1.0), ("bb".to_string(), 2.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "t");
        let bars = |l: &str| l.chars().filter(|&c| c == '█').count();
        assert_eq!(bars(lines[2]), 10); // max gets full width
        assert_eq!(bars(lines[1]), 5);
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0, 0.5, 0.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 5);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
        assert_eq!(chars[0], chars[4]);
        assert!(sparkline(&[]).is_empty());
    }

    #[test]
    fn count_formats_thousands() {
        assert_eq!(count(1_234_567), "1,234,567");
        assert_eq!(count(42), "42");
        assert_eq!(count(1000), "1,000");
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f2(1.434), "1.43");
        assert_eq!(f3(0.12345), "0.123");
    }
}
