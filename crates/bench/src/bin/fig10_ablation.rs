//! Figure 10 — relative performance of B-Splitting, B-Gathering,
//! B-Limiting alone, and the full Block Reorganizer, over the
//! outer-product baseline, on the 28 real-world datasets.
//!
//! Paper means: B-Limiting 1.05×, B-Splitting 1.05×, B-Gathering 1.28×,
//! Block Reorganizer 1.51× (over the outer-product baseline).

use block_reorganizer::ablate::ablation;
use br_bench::harness::{geomean, parse_args, square_context};
use br_bench::report::{f2, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    b_limiting: f64,
    b_splitting: f64,
    b_gathering: f64,
    block_reorganizer: f64,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    println!(
        "Figure 10: per-technique speedup over the outer-product baseline (scale {:?})\n",
        args.scale
    );
    let mut t = Table::new(vec![
        "dataset",
        "B-Limiting",
        "B-Splitting",
        "B-Gathering",
        "Block-Reorganizer",
    ]);
    let mut rows = Vec::new();
    let (mut ls, mut ss, mut gs, mut fs) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for spec in RealWorldRegistry::all() {
        let a = spec.generate(args.scale);
        let ctx = square_context(&a);
        let rep = ablation(&ctx, &dev).expect("valid shapes");
        let (limit, split, gather, full) = rep.fig10_bars();
        t.row(vec![
            spec.name.to_string(),
            f2(limit),
            f2(split),
            f2(gather),
            f2(full),
        ]);
        ls.push(limit);
        ss.push(split);
        gs.push(gather);
        fs.push(full);
        rows.push(Row {
            dataset: spec.name.to_string(),
            b_limiting: limit,
            b_splitting: split,
            b_gathering: gather,
            block_reorganizer: full,
        });
    }
    t.print();
    println!("\ngeometric means (measured vs paper):");
    let mut m = Table::new(vec!["technique", "measured", "paper"]);
    m.row(vec![
        "B-Limiting".to_string(),
        f2(geomean(&ls)),
        "1.05".to_string(),
    ]);
    m.row(vec![
        "B-Splitting".to_string(),
        f2(geomean(&ss)),
        "1.05".to_string(),
    ]);
    m.row(vec![
        "B-Gathering".to_string(),
        f2(geomean(&gs)),
        "1.28".to_string(),
    ]);
    m.row(vec![
        "Block-Reorganizer".to_string(),
        f2(geomean(&fs)),
        "1.51".to_string(),
    ]);
    m.print();
    maybe_write_json(&args.json, &rows);
}
