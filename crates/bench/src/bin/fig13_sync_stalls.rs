//! Figure 13 — sync-stall ratio before and after B-Gathering, on the
//! 10-dataset panel (Titan Xp).
//!
//! Underloaded blocks park most of their lanes at the final barrier while
//! the few effective threads work; gathering packs lanes full and the
//! stalls "highly decrease ... leaving only memory stalls".

use block_reorganizer::{BlockReorganizer, ReorganizerConfig};
use br_bench::harness::{parse_args, square_context};
use br_bench::report::{f2, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use br_spgemm::pipeline::{run_method, SpgemmMethod};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    stall_before_pct: f64,
    stall_after_pct: f64,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    println!("Figure 13: expansion sync-stall ratio before/after B-Gathering\n");
    let mut t = Table::new(vec!["dataset", "before %", "after %"]);
    let mut rows = Vec::new();
    let gather = BlockReorganizer::new(ReorganizerConfig::gather_only());
    for spec in RealWorldRegistry::fig3_panel() {
        let a = spec.generate(args.scale);
        let ctx = square_context(&a);
        let before = run_method(&ctx, SpgemmMethod::OuterProduct, &dev).expect("valid shapes");
        let after = gather.multiply_ctx(&ctx, &dev).expect("valid shapes");
        // profile [0] of the baseline is its expansion; the reorganizer's
        // expansion is profile [1] (precalc is [0]).
        let b = before.profiles[0].sync_stall_ratio() * 100.0;
        let a_pct = after.profiles[1].sync_stall_ratio() * 100.0;
        t.row(vec![spec.name.to_string(), f2(b), f2(a_pct)]);
        rows.push(Row {
            dataset: spec.name.to_string(),
            stall_before_pct: b,
            stall_after_pct: a_pct,
        });
    }
    t.print();
    println!("\npaper: stall percentage drops sharply on every dataset after gathering");
    maybe_write_json(&args.json, &rows);
}
