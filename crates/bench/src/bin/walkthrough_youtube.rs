//! Section IV-E — the YouTube walkthrough: how the three techniques
//! compose on one skewed network.
//!
//! Paper numbers (at full scale): 713 dominator pairs, 362 736 low
//! performers, 12 657 limited rows; B-Splitting +10.4% (SM utilization
//! 16% → 99%), B-Gathering +6.7%, B-Limiting +16.8%, combined +41.5%.

use block_reorganizer::ablate::ablation;
use block_reorganizer::{BlockReorganizer, ReorganizerConfig};
use br_bench::harness::{parse_args, square_context};
use br_bench::report::{count, f2, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use br_spgemm::pipeline::{run_method, SpgemmMethod};
use serde::Serialize;

#[derive(Serialize)]
struct Walkthrough {
    dominators: usize,
    low_performers: usize,
    limited_rows: usize,
    sm_util_before_pct: f64,
    sm_util_after_pct: f64,
    gain_split_pct: f64,
    gain_gather_pct: f64,
    gain_limit_pct: f64,
    gain_combined_pct: f64,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    let spec = RealWorldRegistry::get("youtube").expect("registry has youtube");
    let a = spec.generate(args.scale);
    let ctx = square_context(&a);
    println!(
        "Section IV-E walkthrough: youtube surrogate ({} nodes, {} edges, scale {:?})\n",
        count(a.nrows() as u64),
        count(a.nnz() as u64),
        args.scale
    );

    let full = BlockReorganizer::new(ReorganizerConfig::default())
        .multiply_ctx(&ctx, &dev)
        .expect("valid shapes");
    let outer = run_method(&ctx, SpgemmMethod::OuterProduct, &dev).expect("valid shapes");
    let rep = ablation(&ctx, &dev).expect("valid shapes");
    let (limit, split, gather, combined) = rep.fig10_bars();

    let mut t = Table::new(vec!["quantity", "measured", "paper (full scale)"]);
    t.row(vec![
        "dominator pairs".to_string(),
        count(full.stats.dominators as u64),
        "713".to_string(),
    ]);
    t.row(vec![
        "low-performer pairs".to_string(),
        count(full.stats.low_performers as u64),
        "362,736".to_string(),
    ]);
    t.row(vec![
        "B-Limited rows".to_string(),
        count(full.stats.limited_rows as u64),
        "12,657".to_string(),
    ]);
    let util_before = outer.profiles[0].lbi() * 100.0;
    let util_after = rep.split_only.profiles[1].lbi() * 100.0;
    t.row(vec![
        "expansion SM util before".to_string(),
        format!("{}%", f2(util_before)),
        "16%".to_string(),
    ]);
    t.row(vec![
        "expansion SM util after split".to_string(),
        format!("{}%", f2(util_after)),
        "99%".to_string(),
    ]);
    t.row(vec![
        "B-Splitting gain".to_string(),
        format!("{}%", f2((split - 1.0) * 100.0)),
        "10.4%".to_string(),
    ]);
    t.row(vec![
        "B-Gathering gain".to_string(),
        format!("{}%", f2((gather - 1.0) * 100.0)),
        "6.7%".to_string(),
    ]);
    t.row(vec![
        "B-Limiting gain".to_string(),
        format!("{}%", f2((limit - 1.0) * 100.0)),
        "16.8%".to_string(),
    ]);
    t.row(vec![
        "combined gain".to_string(),
        format!("{}%", f2((combined - 1.0) * 100.0)),
        "41.5%".to_string(),
    ]);
    t.print();

    maybe_write_json(
        &args.json,
        &Walkthrough {
            dominators: full.stats.dominators,
            low_performers: full.stats.low_performers,
            limited_rows: full.stats.limited_rows,
            sm_util_before_pct: util_before,
            sm_util_after_pct: util_after,
            gain_split_pct: (split - 1.0) * 100.0,
            gain_gather_pct: (gather - 1.0) * 100.0,
            gain_limit_pct: (limit - 1.0) * 100.0,
            gain_combined_pct: (combined - 1.0) * 100.0,
        },
    );
}
