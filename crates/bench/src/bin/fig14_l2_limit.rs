//! Figure 14 — merge-phase L2 throughput as the B-Limiting factor sweeps
//! 0 → 43008 bytes of extra shared memory, on the skewed datasets.
//!
//! The paper's shape: throughput first *rises* (fewer resident merge
//! blocks → less contention) then *falls* (too few warps to hide latency);
//! the fixed production factor is 4 × 6144 B. L2 read and write
//! throughputs improve 1.49× / 1.52× on average at that setting.

use block_reorganizer::{BlockReorganizer, ReorganizerConfig};
use br_bench::harness::{parse_args, square_context};
use br_bench::report::{f2, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use serde::Serialize;

const UNITS: [u32; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

#[derive(Serialize)]
struct Row {
    dataset: String,
    /// (extra bytes, merge L2 read GB/s, merge L2 write GB/s, merge ms)
    series: Vec<(u32, f64, f64, f64)>,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    println!("Figure 14: merge L2 throughput vs limiting factor (bytes of extra shared memory)\n");
    let mut header: Vec<String> = vec!["dataset".into(), "metric".into()];
    header.extend(UNITS.iter().map(|u| (u * 6144).to_string()));
    let mut t = Table::new(header);
    let mut rows = Vec::new();
    let mut read_gain_at_4 = Vec::new();
    let mut write_gain_at_4 = Vec::new();
    for spec in RealWorldRegistry::snap() {
        let a = spec.generate(args.scale);
        let ctx = square_context(&a);
        let mut series = Vec::new();
        for &u in &UNITS {
            let cfg = ReorganizerConfig {
                limiting_units: u,
                ..Default::default()
            };
            let run = BlockReorganizer::new(cfg)
                .multiply_ctx(&ctx, &dev)
                .expect("valid shapes");
            let merge = run
                .profiles
                .iter()
                .find(|p| p.name.contains("merge"))
                .expect("merge profile");
            series.push((
                u * 6144,
                merge.l2_read_gbs(),
                merge.l2_write_gbs(),
                merge.time_ms,
            ));
        }
        t.row(
            std::iter::once(spec.name.to_string())
                .chain(std::iter::once("read GB/s".to_string()))
                .chain(series.iter().map(|s| f2(s.1)))
                .collect(),
        );
        t.row(
            std::iter::once(String::new())
                .chain(std::iter::once("write GB/s".to_string()))
                .chain(series.iter().map(|s| f2(s.2)))
                .collect(),
        );
        read_gain_at_4.push(series[4].1 / series[0].1.max(1e-9));
        write_gain_at_4.push(series[4].2 / series[0].2.max(1e-9));
        rows.push(Row {
            dataset: spec.name.to_string(),
            series,
        });
    }
    t.print();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nat the production factor (4 x 6144 B): read gain {}x (paper 1.49x), write gain {}x (paper 1.52x)",
        f2(mean(&read_gain_at_4)),
        f2(mean(&write_gain_at_4)),
    );
    maybe_write_json(&args.json, &rows);
}
