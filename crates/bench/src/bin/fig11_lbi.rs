//! Figure 11 — load-balancing effectiveness of B-Splitting: LBI and
//! dominator-block speedup as the splitting factor sweeps 1 → 64, on the
//! skewed (Stanford) datasets, Titan Xp.
//!
//! Paper: "LBI increases from 0.17 to 0.96, and dominator performance is
//! improved by 8.68× on average"; LBI converges above 90% once the factor
//! reaches the SM count (30).

use block_reorganizer::classify::Classification;
use block_reorganizer::config::ReorganizerConfig;
use block_reorganizer::split::dominator_only_launch;
use br_bench::harness::{geomean, parse_args, square_context};
use br_bench::report::{f2, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::sim::GpuSimulator;
use br_spgemm::workspace::Workspace;
use serde::Serialize;

const FACTORS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

#[derive(Serialize)]
struct Row {
    dataset: String,
    /// (factor, lbi, speedup-vs-factor-1) triples.
    series: Vec<(u32, f64, f64)>,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    let sim = GpuSimulator::new(dev.clone());
    println!(
        "Figure 11: LBI and dominator speedup vs splitting factor ({} SMs)\n",
        dev.num_sms
    );
    let mut t = Table::new(vec![
        "dataset", "metric", "1", "2", "4", "8", "16", "32", "64",
    ]);
    let mut rows = Vec::new();
    let mut final_lbis = Vec::new();
    let mut final_speedups = Vec::new();
    for spec in RealWorldRegistry::snap() {
        let a = spec.generate(args.scale);
        let ctx = square_context(&a);
        let cls = Classification::of(&ctx, &ReorganizerConfig::default());
        if cls.dominators.is_empty() {
            continue;
        }
        let ws = Workspace::for_context(&ctx);
        let mut series = Vec::new();
        let mut base_ms = 0.0;
        for &f in &FACTORS {
            let launch = dominator_only_launch(&ctx, &ws, &cls.dominators, f, 256);
            let profile = sim.run(&launch, &ws.layout);
            if f == 1 {
                base_ms = profile.time_ms;
            }
            series.push((f, profile.lbi(), base_ms / profile.time_ms));
        }
        t.row(
            std::iter::once(spec.name.to_string())
                .chain(std::iter::once("LBI".to_string()))
                .chain(series.iter().map(|&(_, l, _)| f2(l)))
                .collect(),
        );
        t.row(
            std::iter::once(String::new())
                .chain(std::iter::once("speedup".to_string()))
                .chain(series.iter().map(|&(_, _, s)| f2(s)))
                .collect(),
        );
        final_lbis.push(series.last().unwrap().1);
        final_speedups.push(series.last().unwrap().2);
        rows.push(Row {
            dataset: spec.name.to_string(),
            series,
        });
    }
    t.print();
    println!(
        "\nmean LBI at factor 64: {} (paper: 0.96); mean dominator speedup: {}x (paper: 8.68x)",
        f2(final_lbis.iter().sum::<f64>() / final_lbis.len().max(1) as f64),
        f2(geomean(&final_speedups)),
    );
    maybe_write_json(&args.json, &rows);
}
