//! Figure 16(b) — speedups over the row-product baseline on the synthetic
//! `C = A·B` pairs (scales 15–18, edge-factor 16).
//!
//! Paper: `C = AB` on independent pairs compresses far less than `C = A²`,
//! so B-Gathering carries the result; Block Reorganizer averages 1.09×
//! with gains scaling in input size.

use br_bench::harness::{geomean, method_names, method_times_ms, parse_args};
use br_bench::report::{f2, maybe_write_json, Table};
use br_datasets::synthetic::ab_pairs;
use br_gpu_sim::device::DeviceConfig;
use br_spgemm::context::ProblemContext;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scale: String,
    speedups: Vec<f64>,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    println!(
        "Figure 16(b): synthetic C = A·B speedups vs row-product (scale {:?})\n",
        args.scale
    );
    let names = method_names();
    let mut header: Vec<String> = vec!["scale".to_string()];
    header.extend(names.iter().skip(1).map(|s| s.to_string()));
    let mut t = Table::new(header);
    let mut rows = Vec::new();
    let mut reorg = Vec::new();
    for spec in ab_pairs() {
        let a = spec.generate_a(args.scale);
        let b = spec.generate_b(args.scale);
        let ctx = ProblemContext::new(&a, &b).expect("pair shapes agree");
        let times = method_times_ms(&ctx, &dev);
        let speedups: Vec<f64> = times.iter().map(|&ms| times[0] / ms).collect();
        reorg.push(speedups[6]);
        let mut cells = vec![spec.name.to_string()];
        cells.extend(speedups.iter().skip(1).map(|&s| f2(s)));
        t.row(cells);
        rows.push(Row {
            scale: spec.name.to_string(),
            speedups,
        });
    }
    t.print();
    println!(
        "\nBlock-Reorganizer geomean: {}x (paper: 1.09x on C = AB)",
        f2(geomean(&reorg))
    );
    maybe_write_json(&args.json, &rows);
}
