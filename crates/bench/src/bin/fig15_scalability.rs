//! Figure 15 — performance scalability across GPU generations: the full
//! 28-dataset sweep repeated on Titan Xp, Tesla V100 and RTX 2080 Ti.
//!
//! Paper: Block Reorganizer achieves 1.43× / 1.66× / 1.40× over the
//! row-product baseline respectively, while the outer-product baseline
//! stays near 1× everywhere.

use br_bench::harness::{geomean, method_names, method_times_ms, parse_args, square_context};
use br_bench::report::{f2, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    /// Geomean speedup vs row-product per method.
    speedups: Vec<f64>,
}

fn main() {
    let args = parse_args();
    println!(
        "Figure 15: geomean speedup vs row-product on 3 GPUs (scale {:?})\n",
        args.scale
    );
    let names = method_names();
    let mut header: Vec<String> = vec!["device".to_string()];
    header.extend(names.iter().skip(1).map(|s| s.to_string()));
    let mut t = Table::new(header);
    let mut rows = Vec::new();
    for dev in DeviceConfig::all_paper_targets() {
        let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); 7];
        for spec in RealWorldRegistry::all() {
            let a = spec.generate(args.scale);
            let ctx = square_context(&a);
            let times = method_times_ms(&ctx, &dev);
            for (i, &ms) in times.iter().enumerate() {
                per_method[i].push(times[0] / ms);
            }
        }
        let speedups: Vec<f64> = per_method.iter().map(|v| geomean(v)).collect();
        let mut cells = vec![dev.name.clone()];
        cells.extend(speedups.iter().skip(1).map(|&s| f2(s)));
        t.row(cells);
        rows.push(Row {
            device: dev.name.clone(),
            speedups,
        });
    }
    t.print();
    println!("\npaper Block-Reorganizer: Titan Xp 1.43x, Tesla V100 1.66x, RTX 2080 Ti 1.40x");
    maybe_write_json(&args.json, &rows);
}
