//! Figure 12 — L2 cache throughput improvement from B-Splitting, on the
//! skewed datasets (Titan Xp).
//!
//! Splitting forces the divided blocks to share the dominator's row vector,
//! so its traffic turns into L2 hits and throughput rises — the paper
//! measures an 8.9× average L2-throughput improvement.

use block_reorganizer::classify::Classification;
use block_reorganizer::config::ReorganizerConfig;
use block_reorganizer::split::dominator_only_launch;
use br_bench::harness::{geomean, parse_args, square_context};
use br_bench::report::{f2, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::sim::GpuSimulator;
use br_spgemm::workspace::Workspace;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    read_gbs_unsplit: f64,
    read_gbs_split: f64,
    write_gbs_unsplit: f64,
    write_gbs_split: f64,
    hit_rate_unsplit: f64,
    hit_rate_split: f64,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    let sim = GpuSimulator::new(dev.clone());
    println!("Figure 12: L2 throughput with B-Splitting (factor 64 vs 1)\n");
    let mut t = Table::new(vec![
        "dataset",
        "read GB/s (1)",
        "read GB/s (64)",
        "write GB/s (1)",
        "write GB/s (64)",
        "hit% (1)",
        "hit% (64)",
    ]);
    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for spec in RealWorldRegistry::snap() {
        let a = spec.generate(args.scale);
        let ctx = square_context(&a);
        let cls = Classification::of(&ctx, &ReorganizerConfig::default());
        if cls.dominators.is_empty() {
            continue;
        }
        let ws = Workspace::for_context(&ctx);
        let unsplit = sim.run(
            &dominator_only_launch(&ctx, &ws, &cls.dominators, 1, 256),
            &ws.layout,
        );
        let split = sim.run(
            &dominator_only_launch(&ctx, &ws, &cls.dominators, 64, 256),
            &ws.layout,
        );
        let row = Row {
            dataset: spec.name.to_string(),
            read_gbs_unsplit: unsplit.l2_read_gbs(),
            read_gbs_split: split.l2_read_gbs(),
            write_gbs_unsplit: unsplit.l2_write_gbs(),
            write_gbs_split: split.l2_write_gbs(),
            hit_rate_unsplit: unsplit.l2.hit_rate(),
            hit_rate_split: split.l2.hit_rate(),
        };
        t.row(vec![
            row.dataset.clone(),
            f2(row.read_gbs_unsplit),
            f2(row.read_gbs_split),
            f2(row.write_gbs_unsplit),
            f2(row.write_gbs_split),
            f2(row.hit_rate_unsplit * 100.0),
            f2(row.hit_rate_split * 100.0),
        ]);
        let denom = (row.read_gbs_unsplit + row.write_gbs_unsplit).max(1e-9);
        gains.push((row.read_gbs_split + row.write_gbs_split) / denom);
        rows.push(row);
    }
    t.print();
    println!(
        "\nmean L2 throughput gain: {}x (paper: 8.9x)",
        f2(geomean(&gains))
    );
    maybe_write_json(&args.json, &rows);
}
