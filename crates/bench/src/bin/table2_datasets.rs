//! Table II — the 28 real-world datasets: published numbers beside the
//! surrogate actually generated at the chosen scale, with measured
//! `nnz(C = A²)` and the degree-skew statistics that justify each
//! surrogate's distribution class.

use br_bench::harness::{parse_args, square_context};
use br_bench::report::{count, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_sparse::stats::DegreeStats;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    class: String,
    paper_dim: usize,
    paper_nnz_a: usize,
    paper_nnz_c: usize,
    surrogate_dim: usize,
    surrogate_nnz_a: usize,
    surrogate_nnz_c: usize,
    gini: f64,
}

fn main() {
    let args = parse_args();
    println!(
        "Table II: real-world datasets (surrogates at scale {:?})\n",
        args.scale
    );
    let mut t = Table::new(vec![
        "name",
        "class",
        "paper dim",
        "paper nnz(A)",
        "paper nnz(C)",
        "surr dim",
        "surr nnz(A)",
        "surr nnz(C)",
        "gini",
    ]);
    let mut rows = Vec::new();
    for spec in RealWorldRegistry::all() {
        let a = spec.generate(args.scale);
        let ctx = square_context(&a);
        let stats = DegreeStats::of_rows(&a);
        let row = Row {
            name: spec.name.to_string(),
            class: format!("{:?}", spec.class),
            paper_dim: spec.paper_dim,
            paper_nnz_a: spec.paper_nnz_a,
            paper_nnz_c: spec.paper_nnz_c,
            surrogate_dim: a.nrows(),
            surrogate_nnz_a: a.nnz(),
            surrogate_nnz_c: ctx.output_total,
            gini: stats.gini,
        };
        t.row(vec![
            row.name.clone(),
            row.class.clone(),
            count(row.paper_dim as u64),
            count(row.paper_nnz_a as u64),
            count(row.paper_nnz_c as u64),
            count(row.surrogate_dim as u64),
            count(row.surrogate_nnz_a as u64),
            count(row.surrogate_nnz_c as u64),
            format!("{:.2}", row.gini),
        ]);
        rows.push(row);
    }
    t.print();
    maybe_write_json(&args.json, &rows);
}
