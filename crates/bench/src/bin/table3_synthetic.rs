//! Table III — synthetic datasets: the S / P / SP families and the
//! `C = AB` pairs, with their published parameters and the generated
//! matrices' actual sizes at the chosen scale.

use br_bench::harness::parse_args;
use br_bench::report::{count, maybe_write_json, Table};
use br_datasets::synthetic::{ab_pairs, all_square};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    op: String,
    paper_dim: usize,
    paper_elements: usize,
    probs: [f64; 4],
    generated_dim: usize,
    generated_nnz_a: usize,
    generated_nnz_b: usize,
}

fn main() {
    let args = parse_args();
    println!(
        "Table III: synthetic datasets (generated at scale {:?})\n",
        args.scale
    );
    let mut t = Table::new(vec![
        "name",
        "op",
        "paper dim",
        "paper elems",
        "parameters",
        "gen dim",
        "gen nnz(A)",
        "gen nnz(B)",
    ]);
    let mut rows = Vec::new();
    for spec in all_square().iter().chain(ab_pairs().iter()) {
        let a = spec.generate_a(args.scale);
        let b = spec.generate_b(args.scale);
        let row = Row {
            name: spec.name.to_string(),
            op: match spec.op {
                br_datasets::synthetic::SyntheticOp::Square => "C=A^2".to_string(),
                br_datasets::synthetic::SyntheticOp::Pair => "C=AB".to_string(),
            },
            paper_dim: spec.dim,
            paper_elements: spec.elements,
            probs: spec.probs,
            generated_dim: a.nrows(),
            generated_nnz_a: a.nnz(),
            generated_nnz_b: b.nnz(),
        };
        t.row(vec![
            row.name.clone(),
            row.op.clone(),
            count(row.paper_dim as u64),
            count(row.paper_elements as u64),
            format!(
                "({:.2},{:.2},{:.2},{:.2})",
                row.probs[0], row.probs[1], row.probs[2], row.probs[3]
            ),
            count(row.generated_dim as u64),
            count(row.generated_nnz_a as u64),
            count(row.generated_nnz_b as u64),
        ]);
        rows.push(row);
    }
    t.print();
    maybe_write_json(&args.json, &rows);
}
