//! Extension bench (beyond the paper's figures): sensitivity of the Block
//! Reorganizer to its design parameters, as called out in DESIGN.md —
//!
//! * the dominator threshold multiplier α (Section IV-B discusses tuning
//!   it per network but fixes one value; we sweep it),
//! * the splitting-factor policy (the paper's per-vector *greedy* choice
//!   vs one global Auto factor vs fixed factors),
//! * and a comparison against the AC-spGEMM-like chunked scheme from the
//!   Related Work discussion.

use block_reorganizer::classify::auto_alpha;
use block_reorganizer::config::SplitPolicy;
use block_reorganizer::{BlockReorganizer, ReorganizerConfig};
use br_bench::harness::{parse_args, square_context};
use br_bench::report::{bar_chart, f2, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use br_spgemm::methods::ac_like;
use br_spgemm::pipeline::{run_method, SpgemmMethod};
use serde::Serialize;

#[derive(Serialize)]
struct Results {
    alpha_sweep: Vec<(f64, f64)>,
    auto_alpha_value: f64,
    policy_ms: Vec<(String, f64)>,
    ac_like_speedup_vs_row: f64,
    reorganizer_speedup_vs_row: f64,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    let spec = RealWorldRegistry::get("loc-gowalla").expect("registry dataset");
    let a = spec.generate(args.scale);
    let ctx = square_context(&a);
    println!(
        "Parameter ablations on {} surrogate ({} nodes, {} edges)\n",
        spec.name,
        a.nrows(),
        a.nnz()
    );

    // --- α sweep ---
    let mut alpha_sweep = Vec::new();
    let mut t = Table::new(vec!["alpha", "dominators", "total ms", "speedup vs row"]);
    let row_ms = run_method(&ctx, SpgemmMethod::RowProduct, &dev)
        .expect("valid shapes")
        .total_ms;
    for alpha in [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0] {
        let run = BlockReorganizer::new(ReorganizerConfig {
            alpha,
            ..Default::default()
        })
        .multiply_ctx(&ctx, &dev)
        .expect("valid shapes");
        t.row(vec![
            format!("{alpha}"),
            run.stats.dominators.to_string(),
            f2(run.total_ms),
            f2(row_ms / run.total_ms),
        ]);
        alpha_sweep.push((alpha, row_ms / run.total_ms));
    }
    t.print();
    let auto = auto_alpha(&ctx);
    println!("auto-selected alpha for this network: {auto}\n");

    // --- splitting policy ---
    let mut policy_ms = Vec::new();
    for (name, policy) in [
        ("Auto", SplitPolicy::Auto),
        ("Greedy", SplitPolicy::Greedy),
        ("Fixed(8)", SplitPolicy::Fixed(8)),
        ("Fixed(64)", SplitPolicy::Fixed(64)),
        ("Fixed(256)", SplitPolicy::Fixed(256)),
    ] {
        let run = BlockReorganizer::new(ReorganizerConfig {
            split_policy: policy,
            ..Default::default()
        })
        .multiply_ctx(&ctx, &dev)
        .expect("valid shapes");
        policy_ms.push((name.to_string(), run.total_ms));
    }
    let bars: Vec<(String, f64)> = policy_ms
        .iter()
        .map(|(n, ms)| (n.clone(), row_ms / ms))
        .collect();
    print!(
        "{}",
        bar_chart("splitting policy (speedup vs row-product)", &bars, 40)
    );

    // --- AC-spGEMM-like comparison ---
    let ac = ac_like::run(&ctx, &dev).expect("valid shapes");
    let reorg = BlockReorganizer::new(ReorganizerConfig::default())
        .multiply_ctx(&ctx, &dev)
        .expect("valid shapes");
    println!(
        "\nAC-spGEMM-like: {}x vs row-product; Block Reorganizer: {}x",
        f2(row_ms / ac.total_ms),
        f2(row_ms / reorg.total_ms)
    );

    maybe_write_json(
        &args.json,
        &Results {
            alpha_sweep,
            auto_alpha_value: auto,
            policy_ms,
            ac_like_speedup_vs_row: row_ms / ac.total_ms,
            reorganizer_speedup_vs_row: row_ms / reorg.total_ms,
        },
    );
}
