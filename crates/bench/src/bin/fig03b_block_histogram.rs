//! Figure 3(b) — distribution of outer-product thread blocks by number of
//! effective threads, on the 10-dataset panel.
//!
//! The paper's observation: "most of the thread blocks have less than 32
//! effective threads for many matrices" — the low-performer population
//! B-Gathering targets.

use br_bench::harness::{parse_args, square_context};
use br_bench::report::{f2, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use br_spgemm::pipeline::{run_method, SpgemmMethod};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    /// Fraction of blocks per log2 effective-thread bucket:
    /// [1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, ...]
    histogram: Vec<f64>,
    under_warp_fraction: f64,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    println!("Figure 3(b): thread-block distribution by effective threads (outer-product)\n");
    let mut t = Table::new(vec![
        "dataset",
        "=1",
        "=2",
        "3-4",
        "5-8",
        "9-16",
        "17-32",
        ">32",
        "<32 total %",
    ]);
    let mut rows = Vec::new();
    for spec in RealWorldRegistry::fig3_panel() {
        let a = spec.generate(args.scale);
        let ctx = square_context(&a);
        let run = run_method(&ctx, SpgemmMethod::OuterProduct, &dev).expect("valid shapes");
        let hist = &run.profiles[0].effective_thread_histogram;
        let total: usize = hist.iter().sum();
        let frac = |range: std::ops::Range<usize>| -> f64 {
            let n: usize = range.filter_map(|i| hist.get(i)).sum();
            n as f64 / total.max(1) as f64
        };
        let buckets = vec![
            frac(0..1),
            frac(1..2),
            frac(2..3),
            frac(3..4),
            frac(4..5),
            frac(5..6),
            frac(6..hist.len().max(6)),
        ];
        // Buckets 0..=5 cover effective threads ≤ 32 (the warp size).
        let under = buckets[..6].iter().sum::<f64>();
        t.row(vec![
            spec.name.to_string(),
            f2(buckets[0] * 100.0),
            f2(buckets[1] * 100.0),
            f2(buckets[2] * 100.0),
            f2(buckets[3] * 100.0),
            f2(buckets[4] * 100.0),
            f2(buckets[5] * 100.0),
            f2(buckets[6] * 100.0),
            f2(under * 100.0),
        ]);
        rows.push(Row {
            dataset: spec.name.to_string(),
            histogram: buckets,
            under_warp_fraction: under,
        });
    }
    t.print();
    println!("\npaper: most blocks have < 32 effective threads on sparse networks");
    maybe_write_json(&args.json, &rows);
}
