//! Figure 3(c) — execution-time split between expansion and merge for the
//! outer-product baseline on the 10-dataset panel.
//!
//! The paper: "high merge latency exists when the merge process is
//! performed for rows with large nnz" — the skewed sets spend a large
//! share of their time merging.

use br_bench::harness::{parse_args, square_context};
use br_bench::report::{f2, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use br_spgemm::pipeline::{run_method, SpgemmMethod};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    class: String,
    expansion_ms: f64,
    merge_ms: f64,
    merge_share: f64,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    println!("Figure 3(c): expansion vs merge time, outer-product baseline\n");
    let mut t = Table::new(vec!["dataset", "class", "expansion %", "merge %"]);
    let mut rows = Vec::new();
    for spec in RealWorldRegistry::fig3_panel() {
        let a = spec.generate(args.scale);
        let ctx = square_context(&a);
        let run = run_method(&ctx, SpgemmMethod::OuterProduct, &dev).expect("valid shapes");
        let exp = run.phase_ms("expansion");
        let merge = run.phase_ms("merge");
        let total = (exp + merge).max(1e-12);
        t.row(vec![
            spec.name.to_string(),
            format!("{:?}", spec.class),
            f2(exp / total * 100.0),
            f2(merge / total * 100.0),
        ]);
        rows.push(Row {
            dataset: spec.name.to_string(),
            class: format!("{:?}", spec.class),
            expansion_ms: exp,
            merge_ms: merge,
            merge_share: merge / total,
        });
    }
    t.print();
    println!("\npaper: merge share grows with row-nnz skew of the output matrix");
    maybe_write_json(&args.json, &rows);
}
