//! Extension bench: hardware scale-up. Figure 11's discussion claims that
//! because LBI converges once the splitting factor reaches the SM count,
//! "block-splitting is still an effective technique to improve performance"
//! as hardware grows. We test that directly: sweep the SM count of a
//! Titan-Xp-like device (bandwidth scaled proportionally) and measure the
//! Block Reorganizer's speedup over the row-product baseline.

use block_reorganizer::{BlockReorganizer, ReorganizerConfig};
use br_bench::harness::{parse_args, square_context};
use br_bench::report::{f2, maybe_write_json, sparkline, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use br_spgemm::pipeline::{run_method, SpgemmMethod};
use serde::Serialize;

const SM_COUNTS: [u32; 6] = [15, 30, 45, 60, 90, 120];

fn scaled_device(sms: u32) -> DeviceConfig {
    let base = DeviceConfig::titan_xp();
    let ratio = sms as f64 / base.num_sms as f64;
    DeviceConfig {
        name: format!("TitanXp-like/{sms}SM"),
        num_sms: sms,
        // Bandwidth and L2 grow with the SM count, as across real
        // generations (Table I); per-SM resources stay fixed.
        l2_bytes: (base.l2_bytes as f64 * ratio) as u64,
        dram_bandwidth_gbs: base.dram_bandwidth_gbs * ratio,
        l2_bandwidth_gbs: base.l2_bandwidth_gbs * ratio,
        ..base
    }
}

#[derive(Serialize)]
struct Row {
    dataset: String,
    /// (sms, speedup vs row-product, expansion LBI) triples.
    series: Vec<(u32, f64, f64)>,
}

fn main() {
    let args = parse_args();
    println!(
        "Extension: Block Reorganizer speedup vs SM count (bandwidth-proportional scale-up)\n"
    );
    let mut t = Table::new(vec![
        "dataset", "metric", "15", "30", "45", "60", "90", "120", "trend",
    ]);
    let mut rows = Vec::new();
    for name in ["youtube", "loc-gowalla", "harbor"] {
        let spec = RealWorldRegistry::get(name).expect("registry dataset");
        let a = spec.generate(args.scale);
        let ctx = square_context(&a);
        let mut series = Vec::new();
        for &sms in &SM_COUNTS {
            let dev = scaled_device(sms);
            let row = run_method(&ctx, SpgemmMethod::RowProduct, &dev).expect("valid shapes");
            let reorg = BlockReorganizer::new(ReorganizerConfig::default())
                .multiply_ctx(&ctx, &dev)
                .expect("valid shapes");
            series.push((sms, row.total_ms / reorg.total_ms, reorg.profiles[1].lbi()));
        }
        let speeds: Vec<f64> = series.iter().map(|s| s.1).collect();
        let lbis: Vec<f64> = series.iter().map(|s| s.2).collect();
        t.row(
            std::iter::once(name.to_string())
                .chain(std::iter::once("speedup".to_string()))
                .chain(speeds.iter().map(|&v| f2(v)))
                .chain(std::iter::once(sparkline(&speeds)))
                .collect(),
        );
        t.row(
            std::iter::once(String::new())
                .chain(std::iter::once("exp. LBI".to_string()))
                .chain(lbis.iter().map(|&v| f2(v)))
                .chain(std::iter::once(sparkline(&lbis)))
                .collect(),
        );
        rows.push(Row {
            dataset: name.to_string(),
            series,
        });
    }
    t.print();
    println!("\npaper claim: the Auto splitting factor tracks the SM count, so the gain survives scale-up");
    maybe_write_json(&args.json, &rows);
}
