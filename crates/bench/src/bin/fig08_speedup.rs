//! Figure 8 — speedup of all seven methods over the row-product baseline
//! on the 28 real-world datasets (Titan Xp).
//!
//! Paper means: Block Reorganizer 1.43×; outer-product 0.95×;
//! cuSPARSE 0.29×; CUSP 0.22×; bhSPARSE 0.55×; MKL 0.48×.

use br_bench::harness::{geomean, method_names, method_times_ms, parse_args, square_context};
use br_bench::report::{f2, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    /// Speedup vs row-product, in method order.
    speedups: Vec<f64>,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    println!(
        "Figure 8: speedup over the row-product baseline, {} (scale {:?})\n",
        dev.name, args.scale
    );
    let names = method_names();
    let mut header: Vec<String> = vec!["dataset".to_string()];
    header.extend(names.iter().skip(1).map(|s| s.to_string()));
    let mut t = Table::new(header);
    let mut rows = Vec::new();
    let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); 7];
    for spec in RealWorldRegistry::all() {
        let a = spec.generate(args.scale);
        let ctx = square_context(&a);
        let times = method_times_ms(&ctx, &dev);
        let base = times[0];
        let speedups: Vec<f64> = times.iter().map(|&t| base / t).collect();
        for (i, &s) in speedups.iter().enumerate() {
            per_method[i].push(s);
        }
        let mut cells = vec![spec.name.to_string()];
        cells.extend(speedups.iter().skip(1).map(|&s| f2(s)));
        t.row(cells);
        rows.push(Row {
            dataset: spec.name.to_string(),
            speedups,
        });
    }
    t.print();

    println!("\ngeometric-mean speedup vs row-product:");
    let mut m = Table::new(vec!["method", "measured", "paper"]);
    let paper = [1.0, 0.95, 0.29, 0.22, 0.55, 0.48, 1.43];
    for i in 1..7 {
        m.row(vec![
            names[i].to_string(),
            f2(geomean(&per_method[i])),
            f2(paper[i]),
        ]);
    }
    m.print();
    maybe_write_json(&args.json, &rows);
}
