//! Diagnostic: per-phase breakdown (time, bandwidth pressure, L2 hit rate,
//! sync stalls) of selected methods on one regular and one skewed dataset.
//! Useful when re-calibrating the cost model.

use br_bench::harness::{parse_args, square_context};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use br_spgemm::pipeline::{run_method, SpgemmMethod};

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    for name in ["harbor", "youtube"] {
        let spec = RealWorldRegistry::get(name).expect("registry dataset");
        let a = spec.generate(args.scale);
        let ctx = square_context(&a);
        println!(
            "== {name}: n={} nnz={} inter={} out={}",
            a.nrows(),
            a.nnz(),
            ctx.intermediate_total,
            ctx.output_total
        );
        for m in [
            SpgemmMethod::RowProduct,
            SpgemmMethod::OuterProduct,
            SpgemmMethod::CusparseLike,
            SpgemmMethod::BhsparseLike,
        ] {
            let r = run_method(&ctx, m, &dev).expect("valid shapes");
            print!("{:<14} total {:8.3} ms | ", m.name(), r.total_ms);
            for p in &r.profiles {
                print!(
                    "{}: {:.3}ms (rho {:.2}, l2hit {:.0}%, sync {:.0}%) ",
                    p.name,
                    p.time_ms,
                    p.bandwidth_pressure,
                    p.l2.hit_rate() * 100.0,
                    p.sync_stall_ratio() * 100.0
                );
            }
            println!();
        }
    }
}
