//! Figure 9 — absolute performance in GFLOPS of all seven methods on the
//! 28 real-world datasets (Titan Xp).
//!
//! Absolute numbers are model units (our substrate is a simulator, not the
//! authors' testbed); the figure's *shape* — which method leads on which
//! dataset class, and the overall ordering — is the reproduction target.

use br_bench::harness::{method_names, parse_args, square_context};
use br_bench::report::{f2, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use br_spgemm::pipeline::{run_method, SpgemmMethod};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    gflops: Vec<f64>,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    println!(
        "Figure 9: absolute GFLOPS, {} (scale {:?})\n",
        dev.name, args.scale
    );
    let names = method_names();
    let mut header: Vec<String> = vec!["dataset".to_string()];
    header.extend(names.iter().map(|s| s.to_string()));
    let mut t = Table::new(header);
    let mut rows = Vec::new();
    for spec in RealWorldRegistry::all() {
        let a = spec.generate(args.scale);
        let ctx = square_context(&a);
        let mut gflops = Vec::with_capacity(7);
        for m in SpgemmMethod::all() {
            gflops.push(run_method(&ctx, m, &dev).expect("valid shapes").gflops());
        }
        let reorg = block_reorganizer::BlockReorganizer::default()
            .multiply_ctx(&ctx, &dev)
            .expect("valid shapes");
        gflops.push(reorg.gflops());
        let mut cells = vec![spec.name.to_string()];
        cells.extend(gflops.iter().map(|&g| f2(g)));
        t.row(cells);
        rows.push(Row {
            dataset: spec.name.to_string(),
            gflops,
        });
    }
    t.print();
    println!(
        "\npaper peak: ~16 GFLOPS (protein, Block Reorganizer); shapes matter, not magnitudes"
    );
    maybe_write_json(&args.json, &rows);
}
