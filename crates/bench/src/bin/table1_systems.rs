//! Table I — target system configurations.
//!
//! Prints the three GPU systems (plus the CPU used for the MKL-like
//! baseline) exactly as the paper tabulates them, from the device configs
//! the simulator actually uses.

use br_bench::report::Table;
use br_gpu_sim::device::{CpuConfig, DeviceConfig};

fn main() {
    println!("Table I: Target system configurations (as modelled)\n");
    let mut t = Table::new(vec!["field", "System 1", "System 2", "System 3"]);
    let devs = DeviceConfig::all_paper_targets();
    let cpu = CpuConfig::xeon_e5_2640v4();
    t.row(vec![
        "CPU".to_string(),
        cpu.name.clone(),
        "Xeon E5-2698v4 (modelled as S1)".to_string(),
        "Xeon Gold 5115 (modelled as S1)".to_string(),
    ]);
    t.row(vec![
        "GPU".to_string(),
        devs[0].name.clone(),
        devs[1].name.clone(),
        devs[2].name.clone(),
    ]);
    let row_u32 = |name: &str, f: &dyn Fn(&DeviceConfig) -> u32| {
        vec![
            name.to_string(),
            f(&devs[0]).to_string(),
            f(&devs[1]).to_string(),
            f(&devs[2]).to_string(),
        ]
    };
    t.row(row_u32("Number of SMs", &|d| d.num_sms));
    t.row(row_u32("MAX GPU Clock (MHz)", &|d| d.core_clock_mhz));
    t.row(row_u32("Shared mem / SM (KiB)", &|d| {
        d.shared_mem_per_sm / 1024
    }));
    t.row(vec![
        "L2 cache (MiB)".to_string(),
        format!("{:.1}", devs[0].l2_bytes as f64 / (1 << 20) as f64),
        format!("{:.1}", devs[1].l2_bytes as f64 / (1 << 20) as f64),
        format!("{:.1}", devs[2].l2_bytes as f64 / (1 << 20) as f64),
    ]);
    t.row(vec![
        "DRAM bandwidth (GB/s)".to_string(),
        format!("{:.1}", devs[0].dram_bandwidth_gbs),
        format!("{:.1}", devs[1].dram_bandwidth_gbs),
        format!("{:.1}", devs[2].dram_bandwidth_gbs),
    ]);
    t.row(vec![
        "CUDA Capability",
        "6.1 (Pascal)",
        "7.0 (Volta)",
        "7.5 (Turing)",
    ]);
    t.print();
    println!("\npaper: Titan Xp 30 SMs @1582 MHz; V100 80 SMs @1380 MHz; 2080 Ti 68 SMs @1545 MHz");
}
