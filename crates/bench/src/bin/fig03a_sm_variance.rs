//! Figure 3(a) — per-SM execution-time variance of the outer-product
//! expansion on the 10-dataset panel (5 regular + 5 skewed), Titan Xp.
//!
//! The paper plots per-SM times in descending order and observes that the
//! five regular matrices are flat while the five skewed ones collapse —
//! "SM utilization for loc-Gowalla and as-Caida is less than 20%".

use br_bench::harness::{parse_args, square_context};
use br_bench::report::{f2, maybe_write_json, Table};
use br_datasets::registry::RealWorldRegistry;
use br_gpu_sim::device::DeviceConfig;
use br_spgemm::pipeline::{run_method, SpgemmMethod};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    class: String,
    sm_utilization: f64,
    lbi: f64,
    /// Per-SM busy times normalized to the slowest SM, descending.
    sm_profile: Vec<f64>,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    println!(
        "Figure 3(a): per-SM expansion-time variance, outer-product, {} \n",
        dev.name
    );
    let mut t = Table::new(vec![
        "dataset",
        "class",
        "SM util %",
        "top-5 SM profile (normalized)",
    ]);
    let mut rows = Vec::new();
    for spec in RealWorldRegistry::fig3_panel() {
        let a = spec.generate(args.scale);
        let ctx = square_context(&a);
        let run = run_method(&ctx, SpgemmMethod::OuterProduct, &dev).expect("valid shapes");
        let expansion = &run.profiles[0];
        let busy = expansion.sm_busy_descending();
        let max = busy.first().copied().unwrap_or(0.0).max(1e-12);
        let profile: Vec<f64> = busy.iter().map(|&b| b / max).collect();
        let row = Row {
            dataset: spec.name.to_string(),
            class: format!("{:?}", spec.class),
            sm_utilization: expansion.lbi() * 100.0,
            lbi: expansion.lbi(),
            sm_profile: profile.clone(),
        };
        t.row(vec![
            row.dataset.clone(),
            row.class.clone(),
            f2(row.sm_utilization),
            profile
                .iter()
                .take(5)
                .map(|v| f2(*v))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
        rows.push(row);
    }
    t.print();
    println!(
        "\npaper: regular sets flat (util high); loc-gowalla / as-caida below 20% utilization"
    );
    maybe_write_json(&args.json, &rows);
}
