//! Figure 16(a) — speedups over the row-product baseline on the synthetic
//! `C = A²` families: S (scalability), P (skewness), SP (sparsity).
//!
//! Paper shapes: cuSPARSE wins only on the smallest matrices and collapses
//! as size grows; skew (P) and sparsity (SP) progressively favour the
//! Block Reorganizer.

use br_bench::harness::{method_names, method_times_ms, parse_args};
use br_bench::report::{f2, maybe_write_json, Table};
use br_datasets::synthetic::all_square;
use br_gpu_sim::device::DeviceConfig;
use br_spgemm::context::ProblemContext;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    speedups: Vec<f64>,
}

fn main() {
    let args = parse_args();
    let dev = DeviceConfig::titan_xp();
    println!(
        "Figure 16(a): synthetic C = A^2 speedups vs row-product (scale {:?})\n",
        args.scale
    );
    let names = method_names();
    let mut header: Vec<String> = vec!["dataset".to_string()];
    header.extend(names.iter().skip(1).map(|s| s.to_string()));
    let mut t = Table::new(header);
    let mut rows = Vec::new();
    for spec in all_square() {
        let a = spec.generate_a(args.scale);
        let ctx = ProblemContext::new(&a, &a).expect("square shapes agree");
        let times = method_times_ms(&ctx, &dev);
        let speedups: Vec<f64> = times.iter().map(|&ms| times[0] / ms).collect();
        let mut cells = vec![spec.name.to_string()];
        cells.extend(speedups.iter().skip(1).map(|&s| f2(s)));
        t.row(cells);
        rows.push(Row {
            dataset: spec.name.to_string(),
            speedups,
        });
    }
    t.print();
    println!("\npaper: Block Reorganizer gains grow with size (s1→s4), skew (p1→p4) and sparsity (sp1→sp4)");
    maybe_write_json(&args.json, &rows);
}
