//! # br-bench — the paper's evaluation, regenerated
//!
//! One binary per table/figure (see DESIGN.md §4 for the full index):
//!
//! | target | reproduces |
//! |---|---|
//! | `table1_systems` | Table I (system configurations) |
//! | `table2_datasets` | Table II (28 real-world datasets + surrogates) |
//! | `table3_synthetic` | Table III (synthetic families) |
//! | `fig03a_sm_variance` | Fig. 3(a) per-SM execution-time variance |
//! | `fig03b_block_histogram` | Fig. 3(b) effective-thread histogram |
//! | `fig03c_phase_split` | Fig. 3(c) expansion vs merge split |
//! | `fig08_speedup` | Fig. 8 normalized speedups (7 methods × 28 sets) |
//! | `fig09_gflops` | Fig. 9 absolute GFLOPS |
//! | `fig10_ablation` | Fig. 10 per-technique ablation |
//! | `fig11_lbi` | Fig. 11 LBI vs splitting factor |
//! | `fig12_l2_split` | Fig. 12 L2 throughput with B-Splitting |
//! | `fig13_sync_stalls` | Fig. 13 sync stalls with B-Gathering |
//! | `fig14_l2_limit` | Fig. 14 L2 throughput vs limiting factor |
//! | `fig15_scalability` | Fig. 15 three-GPU scalability |
//! | `fig16a_synthetic_a2` | Fig. 16(a) synthetic `C = A²` |
//! | `fig16b_synthetic_ab` | Fig. 16(b) synthetic `C = AB` |
//! | `walkthrough_youtube` | §IV-E YouTube walkthrough |
//!
//! Every binary accepts `--scale tiny|default|full|<divisor>` (default:
//! `default`, i.e. 1/16 of published sizes) and `--json <path>` to dump
//! machine-readable results alongside the printed table.
//!
//! Beyond the figure binaries, the crate is the regression-tracking
//! library behind `blockreorg-cli bench`:
//!
//! * [`suite`] — the `quick`/`full`/`scaling` benchmark grids and runner,
//! * [`schema`] — the versioned, byte-deterministic `BENCH_<suite>.json`
//!   report format,
//! * [`mod@compare`] — the tolerance-thresholded report diff CI gates on.

#![warn(missing_docs)]

pub mod compare;
pub mod harness;
pub mod report;
pub mod schema;
pub mod suite;

pub use compare::{compare, Comparison, Thresholds};
pub use harness::{parse_args, BenchArgs};
pub use report::Table;
pub use schema::BenchReport;
pub use suite::{run_suite, Suite};
