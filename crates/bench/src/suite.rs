//! Benchmark suites: fixed grids of (dataset × method × device) cases plus
//! a plan-cache service batch, executed on the simulator and folded into a
//! [`BenchReport`].
//!
//! Three suites trade coverage against runtime:
//!
//! * `quick` — three datasets at `tiny` scale, three methods, one device;
//!   seconds. This is the per-PR CI regression gate.
//! * `full` — eight datasets at `default` scale, all seven methods, the
//!   Titan Xp, plus the reorganizer on all three devices; tens of minutes.
//!   Run weekly by the scheduled workflow.
//! * `scaling` — one regular and one power-law dataset swept across the
//!   three devices and three scales for the outer-product baseline and the
//!   reorganizer; minutes.

use crate::schema::{
    git_sha, BenchReport, CaseMetrics, CaseReport, PhaseMetrics, ServiceSection, SCHEMA_VERSION,
};
use block_reorganizer::{BlockReorganizer, ReorganizerConfig};
use br_datasets::registry::{RealWorldRegistry, ScaleFactor};
use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::profiler::KernelProfile;
use br_service::cache::config_fingerprint;
use br_service::prelude::*;
use br_spgemm::pipeline::{run_method, SpgemmMethod, SpgemmRun};
use std::sync::Arc;

/// Which benchmark suite to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// CI regression gate: small, seconds.
    Quick,
    /// Weekly coverage run: all methods, minutes.
    Full,
    /// Device/scale sweep.
    Scaling,
}

impl Suite {
    /// Parses the CLI spelling.
    pub fn parse(text: &str) -> Option<Suite> {
        match text {
            "quick" => Some(Suite::Quick),
            "full" => Some(Suite::Full),
            "scaling" => Some(Suite::Scaling),
            _ => None,
        }
    }

    /// The canonical name, used for the `BENCH_<suite>.json` filename.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Quick => "quick",
            Suite::Full => "full",
            Suite::Scaling => "scaling",
        }
    }

    /// The suite's case grid, in a fixed, stable order.
    pub fn cases(self) -> Vec<BenchCase> {
        match self {
            Suite::Quick => {
                let mut out = Vec::new();
                for dataset in ["harbor", "emailEnron", "patents_main"] {
                    for method in [
                        MethodSel::Baseline(SpgemmMethod::RowProduct),
                        MethodSel::Baseline(SpgemmMethod::OuterProduct),
                        MethodSel::Reorganizer,
                    ] {
                        out.push(BenchCase {
                            dataset,
                            scale: ScaleFactor::Tiny,
                            method,
                            device: DeviceSel::TitanXp,
                        });
                    }
                }
                out
            }
            Suite::Full => {
                let datasets = [
                    "filter3D",
                    "harbor",
                    "protein",
                    "2cube_sphere",
                    "youtube",
                    "emailEnron",
                    "patents_main",
                    "epinions",
                ];
                let mut out = Vec::new();
                for dataset in datasets {
                    for m in SpgemmMethod::all() {
                        out.push(BenchCase {
                            dataset,
                            scale: ScaleFactor::Default,
                            method: MethodSel::Baseline(m),
                            device: DeviceSel::TitanXp,
                        });
                    }
                    for device in [
                        DeviceSel::TitanXp,
                        DeviceSel::TeslaV100,
                        DeviceSel::Rtx2080Ti,
                    ] {
                        out.push(BenchCase {
                            dataset,
                            scale: ScaleFactor::Default,
                            method: MethodSel::Reorganizer,
                            device,
                        });
                    }
                }
                out
            }
            Suite::Scaling => {
                let mut out = Vec::new();
                for dataset in ["harbor", "emailEnron"] {
                    for scale in [
                        ScaleFactor::Div(64),
                        ScaleFactor::Div(32),
                        ScaleFactor::Div(16),
                    ] {
                        for device in [
                            DeviceSel::TitanXp,
                            DeviceSel::TeslaV100,
                            DeviceSel::Rtx2080Ti,
                        ] {
                            for method in [
                                MethodSel::Baseline(SpgemmMethod::OuterProduct),
                                MethodSel::Reorganizer,
                            ] {
                                out.push(BenchCase {
                                    dataset,
                                    scale,
                                    method,
                                    device,
                                });
                            }
                        }
                    }
                }
                out
            }
        }
    }
}

/// Which method a case runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodSel {
    /// One of the six Figure 8 baselines.
    Baseline(SpgemmMethod),
    /// The Block Reorganizer (default config).
    Reorganizer,
}

impl MethodSel {
    /// Display name in the paper's legend spelling.
    pub fn name(self) -> &'static str {
        match self {
            MethodSel::Baseline(m) => m.name(),
            MethodSel::Reorganizer => "Block-Reorganizer",
        }
    }
}

/// Which modelled device a case runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceSel {
    /// Table I System 1.
    TitanXp,
    /// Table I System 2.
    TeslaV100,
    /// Table I System 3.
    Rtx2080Ti,
}

impl DeviceSel {
    /// Builds the configuration.
    pub fn config(self) -> DeviceConfig {
        match self {
            DeviceSel::TitanXp => DeviceConfig::titan_xp(),
            DeviceSel::TeslaV100 => DeviceConfig::tesla_v100(),
            DeviceSel::Rtx2080Ti => DeviceConfig::rtx_2080_ti(),
        }
    }

    /// Short slug used in case ids.
    pub fn slug(self) -> &'static str {
        match self {
            DeviceSel::TitanXp => "titan-xp",
            DeviceSel::TeslaV100 => "tesla-v100",
            DeviceSel::Rtx2080Ti => "rtx-2080-ti",
        }
    }
}

/// One (dataset × scale × method × device) grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchCase {
    /// Table II dataset name.
    pub dataset: &'static str,
    /// Surrogate scale.
    pub scale: ScaleFactor,
    /// Method under test.
    pub method: MethodSel,
    /// Target device.
    pub device: DeviceSel,
}

impl BenchCase {
    /// The stable identity string cases are matched by across reports.
    pub fn id(&self) -> String {
        format!(
            "{}@{}/{}/{}",
            self.dataset,
            self.scale.label(),
            self.method.name(),
            self.device.slug()
        )
    }
}

/// Runs a whole suite and assembles the report. `progress` receives one
/// line per completed case (pass `|_| {}` to silence).
pub fn run_suite(suite: Suite, mut progress: impl FnMut(&str)) -> BenchReport {
    let config = ReorganizerConfig::default();
    let mut cases = Vec::new();
    for case in suite.cases() {
        let report = run_case(&case, &config);
        progress(&format!(
            "{:<55} {:>14.0} cycles  {:>9.3} ms",
            report.id, report.metrics.makespan_cycles, report.metrics.total_ms
        ));
        cases.push(report);
    }
    let service = run_service_batch(suite);
    progress(&format!(
        "service batch: {} jobs, cache hit rate {:.2}",
        service.jobs, service.cache_hit_rate
    ));
    BenchReport {
        schema_version: SCHEMA_VERSION,
        suite: suite.name().to_string(),
        git_sha: git_sha(),
        model_version: br_gpu_sim::MODEL_VERSION,
        config_fingerprint: config_fingerprint(&config),
        cases,
        service,
    }
}

/// Runs one grid point.
fn run_case(case: &BenchCase, config: &ReorganizerConfig) -> CaseReport {
    let spec = RealWorldRegistry::get(case.dataset)
        .unwrap_or_else(|| panic!("suite references unknown dataset {:?}", case.dataset));
    let a = spec.generate(case.scale);
    let ctx = crate::harness::square_context(&a);
    let device = case.device.config();
    let run: SpgemmRun<f64> = match case.method {
        MethodSel::Baseline(m) => run_method(&ctx, m, &device).expect("square shapes always agree"),
        MethodSel::Reorganizer => BlockReorganizer::new(*config)
            .multiply_ctx(&ctx, &device)
            .expect("square shapes always agree")
            .to_spgemm_run(),
    };
    CaseReport {
        id: case.id(),
        dataset: case.dataset.to_string(),
        scale: case.scale.label(),
        method: case.method.name().to_string(),
        device: device.name.clone(),
        device_fingerprint: device.fingerprint(),
        metrics: metrics_of(&run),
    }
}

/// Folds a run's kernel profiles into the tracked counters.
fn metrics_of(run: &SpgemmRun<f64>) -> CaseMetrics {
    let phases: Vec<PhaseMetrics> = run
        .profiles
        .iter()
        .map(|p| PhaseMetrics {
            name: p.name.clone(),
            makespan_cycles: p.makespan_cycles,
            lbi: p.lbi(),
            l2_hit_rate: p.l2.hit_rate(),
            sync_stall_ratio: p.sync_stall_ratio(),
        })
        .collect();
    let makespan_cycles: f64 = phases.iter().map(|p| p.makespan_cycles).sum();
    let (accesses, hits) = run
        .profiles
        .iter()
        .fold((0u64, 0u64), |(a, h), p| (a + p.l2.accesses, h + p.l2.hits));
    let (busy, stalls) = run.profiles.iter().fold((0.0f64, 0.0f64), |(b, s), p| {
        (b + p.busy_cycles, s + p.sync_stall_cycles)
    });
    CaseMetrics {
        makespan_cycles,
        phases,
        total_ms: run.total_ms,
        lbi: worst_lbi(&run.profiles),
        l2_hit_rate: if accesses == 0 {
            0.0
        } else {
            hits as f64 / accesses as f64
        },
        sync_stall_ratio: if busy <= 0.0 { 0.0 } else { stalls / busy },
        gflops: run.gflops(),
        flops: run.flops,
        result_nnz: run.result.nnz() as u64,
    }
}

fn worst_lbi(profiles: &[KernelProfile]) -> f64 {
    profiles.iter().map(|p| p.lbi()).fold(0.0, f64::max)
}

/// Exercises the `br-service` plan cache with a deterministic batch: a few
/// distinct matrices, each multiplied several times, so the cache sees
/// both cold misses and warm hits regardless of worker interleaving.
fn run_service_batch(suite: Suite) -> ServiceSection {
    let (repeats, scale) = match suite {
        Suite::Quick => (3usize, ScaleFactor::Tiny),
        Suite::Full => (4, ScaleFactor::Default),
        Suite::Scaling => (3, ScaleFactor::Tiny),
    };
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for dataset in ["harbor", "emailEnron"] {
        let spec = RealWorldRegistry::get(dataset).expect("registry dataset");
        let a = Arc::new(spec.generate(scale));
        for _ in 0..repeats {
            jobs.push(JobRequest::square(id, a.clone()).with_label(dataset));
            id += 1;
        }
    }
    // One worker: with several, two workers can race on the same cold key
    // and both record a miss, making hit/miss counts depend on scheduling.
    // The report must be byte-identical across runs, so the batch is
    // sequential; concurrency itself is covered by br-service's own tests.
    let batch =
        SpgemmService::run_batch(ServiceConfig::uniform(DeviceConfig::titan_xp(), 1, 8), jobs);
    let stats = &batch.stats;
    ServiceSection {
        jobs: stats.jobs as u64,
        failures: stats.failures as u64,
        cache_hits: stats.cache.hits,
        cache_misses: stats.cache.misses,
        cache_evictions: stats.cache.evictions,
        cache_hit_rate: stats.cache.hit_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_parsing_and_names_roundtrip() {
        for s in [Suite::Quick, Suite::Full, Suite::Scaling] {
            assert_eq!(Suite::parse(s.name()), Some(s));
        }
        assert_eq!(Suite::parse("nope"), None);
    }

    #[test]
    fn case_ids_are_unique_within_each_suite() {
        for suite in [Suite::Quick, Suite::Full, Suite::Scaling] {
            let ids: Vec<String> = suite.cases().iter().map(BenchCase::id).collect();
            let mut dedup = ids.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(ids.len(), dedup.len(), "{} has duplicate ids", suite.name());
        }
    }

    #[test]
    fn quick_suite_references_known_datasets_only() {
        for suite in [Suite::Quick, Suite::Full, Suite::Scaling] {
            for case in suite.cases() {
                assert!(
                    RealWorldRegistry::get(case.dataset).is_some(),
                    "{} references unknown dataset {}",
                    suite.name(),
                    case.dataset
                );
            }
        }
    }

    #[test]
    fn quick_suite_run_is_deterministic() {
        let a = run_suite(Suite::Quick, |_| {});
        let b = run_suite(Suite::Quick, |_| {});
        // Whole-report equality except provenance (git_sha is stable here
        // anyway, but keep the assertion focused on measurements).
        assert_eq!(a.cases, b.cases, "cycle counts must be bit-identical");
        assert_eq!(a.service.cache_hits, b.service.cache_hits);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn quick_suite_measures_real_work() {
        let report = run_suite(Suite::Quick, |_| {});
        assert_eq!(report.cases.len(), 9);
        for case in &report.cases {
            assert!(
                case.metrics.makespan_cycles > 0.0,
                "{} has no cycles",
                case.id
            );
            assert!(case.metrics.result_nnz > 0, "{} empty result", case.id);
            assert!(!case.metrics.phases.is_empty(), "{} has no phases", case.id);
            let phase_sum: f64 = case.metrics.phases.iter().map(|p| p.makespan_cycles).sum();
            assert!(
                (phase_sum - case.metrics.makespan_cycles).abs() < 1e-6,
                "{} phases do not sum to the total",
                case.id
            );
        }
        assert_eq!(report.service.failures, 0);
        assert!(
            report.service.cache_hits >= 2,
            "repeated jobs must hit the plan cache"
        );
    }
}
