//! Benchmark suites: fixed grids of (dataset × method × device) cases plus
//! a plan-cache service batch, executed on the simulator and folded into a
//! [`BenchReport`].
//!
//! The suites trade coverage against runtime:
//!
//! * `quick` — three datasets at `tiny` scale, three methods, one device;
//!   seconds. This is the per-PR CI regression gate.
//! * `full` — eight datasets at `default` scale, all seven methods, the
//!   Titan Xp, plus the reorganizer on all three devices; tens of minutes.
//!   Run weekly by the scheduled workflow.
//! * `scaling` — one regular and one power-law dataset swept across the
//!   three devices and three scales for the outer-product baseline and the
//!   reorganizer; minutes.
//! * `estplan` — the quick grid's datasets planned exactly vs via the
//!   sampling estimator, executed cold; the cold-plan CI gate.
//! * `kway` — the quick grid's datasets run through the reorganizer with
//!   the default merge bins and again with the k-way tournament bin forced
//!   open, so the heavy-row merge crossover shows up in the report.
//! * `reorder` — the quick grid's datasets planned under each row-reorder
//!   strategy (`none`/`degree`/`rcm`/`cluster`), so the per-strategy LBI
//!   and L2-hit-rate deltas show up in the report.

use crate::schema::{
    git_sha, BenchReport, BinHostStats, CaseMetrics, CaseReport, ChainCaseReport, ChainSection,
    ChainStepReport, HostSection, ObsHostStats, PhaseMetrics, PlanCaseReport, PlanSection,
    ServiceSection, SCHEMA_VERSION,
};
use block_reorganizer::plan::{PlanMode, ReorgPlan};
use block_reorganizer::reorder::ReorderStrategy;
use block_reorganizer::{BlockReorganizer, ReorganizerConfig};
use br_datasets::registry::{RealWorldRegistry, ScaleFactor};
use br_gpu_sim::device::DeviceConfig;
use br_gpu_sim::profiler::KernelProfile;
use br_gpu_sim::sim::GpuSimulator;
use br_obs::Registry;
use br_service::cache::config_fingerprint;
use br_service::chain as service_chain;
use br_service::prelude::*;
use br_sparse::par;
use br_spgemm::accum::ScratchPool;
use br_spgemm::accum::{effective_thresholds_for, RowBins};
use br_spgemm::estimate::effective_estimator;
use br_spgemm::pipeline::{run_method, SpgemmMethod, SpgemmRun};
use br_workloads::Workload;
use std::sync::Arc;
use std::time::Instant;

/// Which benchmark suite to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// CI regression gate: small, seconds.
    Quick,
    /// Weekly coverage run: all methods, minutes.
    Full,
    /// Device/scale sweep.
    Scaling,
    /// Cold-plan planning-latency gate: the quick grid's datasets, each
    /// planned twice — exact precalculation vs the sampling estimator —
    /// and executed cold. Records a [`crate::schema::PlanSection`].
    Estplan,
    /// K-way merge crossover sweep: the quick grid's datasets through the
    /// reorganizer with default bins and with the k-way tournament bin
    /// forced open ([`KWAY_SUITE_MIN`]), on the Titan Xp.
    Kway,
    /// Row-reordering sweep: the quick grid's datasets planned under each
    /// strategy (`none`/`degree`/`rcm`/`cluster`) and executed from the
    /// cached plan, on the Titan Xp. Results are bit-identical across
    /// strategies; the report captures the LBI / L2-hit-rate deltas.
    Reorder,
    /// Chained-workload suite: every canonical [`Workload`] program
    /// (iterated squaring, triangle counting, Markov clustering, the
    /// Galerkin triple product) over the quick grid's datasets, each chain
    /// executed step by step through the plan-cached service path against
    /// a fresh per-case cache. Records a [`ChainSection`]; the grid of
    /// single-multiplication [`BenchCase`]s is empty.
    Chain,
}

impl Suite {
    /// Parses the CLI spelling.
    pub fn parse(text: &str) -> Option<Suite> {
        match text {
            "quick" => Some(Suite::Quick),
            "full" => Some(Suite::Full),
            "scaling" => Some(Suite::Scaling),
            "estplan" => Some(Suite::Estplan),
            "kway" => Some(Suite::Kway),
            "reorder" => Some(Suite::Reorder),
            "chain" => Some(Suite::Chain),
            _ => None,
        }
    }

    /// The canonical name, used for the `BENCH_<suite>.json` filename.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Quick => "quick",
            Suite::Full => "full",
            Suite::Scaling => "scaling",
            Suite::Estplan => "estplan",
            Suite::Kway => "kway",
            Suite::Reorder => "reorder",
            Suite::Chain => "chain",
        }
    }

    /// The suite's case grid, in a fixed, stable order.
    pub fn cases(self) -> Vec<BenchCase> {
        match self {
            Suite::Quick => {
                let mut out = Vec::new();
                for dataset in ["harbor", "emailEnron", "patents_main"] {
                    for method in [
                        MethodSel::Baseline(SpgemmMethod::RowProduct),
                        MethodSel::Baseline(SpgemmMethod::OuterProduct),
                        MethodSel::Reorganizer,
                    ] {
                        out.push(BenchCase {
                            dataset,
                            scale: ScaleFactor::Tiny,
                            method,
                            device: DeviceSel::TitanXp,
                        });
                    }
                }
                out
            }
            Suite::Full => {
                let datasets = [
                    "filter3D",
                    "harbor",
                    "protein",
                    "2cube_sphere",
                    "youtube",
                    "emailEnron",
                    "patents_main",
                    "epinions",
                ];
                let mut out = Vec::new();
                for dataset in datasets {
                    for m in SpgemmMethod::all() {
                        out.push(BenchCase {
                            dataset,
                            scale: ScaleFactor::Default,
                            method: MethodSel::Baseline(m),
                            device: DeviceSel::TitanXp,
                        });
                    }
                    for device in [
                        DeviceSel::TitanXp,
                        DeviceSel::TeslaV100,
                        DeviceSel::Rtx2080Ti,
                    ] {
                        out.push(BenchCase {
                            dataset,
                            scale: ScaleFactor::Default,
                            method: MethodSel::Reorganizer,
                            device,
                        });
                    }
                }
                out
            }
            Suite::Estplan => {
                let mut out = Vec::new();
                for dataset in ["harbor", "emailEnron", "patents_main"] {
                    for method in [MethodSel::PlanExact, MethodSel::PlanEstimate] {
                        out.push(BenchCase {
                            dataset,
                            scale: ScaleFactor::Tiny,
                            method,
                            device: DeviceSel::TitanXp,
                        });
                    }
                }
                out
            }
            Suite::Kway => {
                let mut out = Vec::new();
                for dataset in ["harbor", "emailEnron", "patents_main"] {
                    for method in [MethodSel::Reorganizer, MethodSel::KwayMerge] {
                        out.push(BenchCase {
                            dataset,
                            scale: ScaleFactor::Tiny,
                            method,
                            device: DeviceSel::TitanXp,
                        });
                    }
                }
                out
            }
            Suite::Reorder => {
                let mut out = Vec::new();
                for dataset in ["harbor", "emailEnron", "patents_main"] {
                    for strategy in [
                        ReorderStrategy::None,
                        ReorderStrategy::Degree,
                        ReorderStrategy::Rcm,
                        ReorderStrategy::Cluster,
                    ] {
                        out.push(BenchCase {
                            dataset,
                            scale: ScaleFactor::Tiny,
                            method: MethodSel::Reordered(strategy),
                            device: DeviceSel::TitanXp,
                        });
                    }
                }
                out
            }
            // The chain suite's unit of work is a whole program, not a
            // single multiplication — its grid lives in `chain_cases`.
            Suite::Chain => Vec::new(),
            Suite::Scaling => {
                let mut out = Vec::new();
                for dataset in ["harbor", "emailEnron"] {
                    for scale in [
                        ScaleFactor::Div(64),
                        ScaleFactor::Div(32),
                        ScaleFactor::Div(16),
                    ] {
                        for device in [
                            DeviceSel::TitanXp,
                            DeviceSel::TeslaV100,
                            DeviceSel::Rtx2080Ti,
                        ] {
                            for method in [
                                MethodSel::Baseline(SpgemmMethod::OuterProduct),
                                MethodSel::Reorganizer,
                            ] {
                                out.push(BenchCase {
                                    dataset,
                                    scale,
                                    method,
                                    device,
                                });
                            }
                        }
                    }
                }
                out
            }
        }
    }
}

/// Which method a case runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodSel {
    /// One of the six Figure 8 baselines.
    Baseline(SpgemmMethod),
    /// The Block Reorganizer (default config).
    Reorganizer,
    /// Build a [`ReorgPlan`] with exact precalculation and execute it cold
    /// (`estplan` suite).
    PlanExact,
    /// Build a [`ReorgPlan`] with the sampling estimator (per-problem
    /// method selection, estimated bin thresholds) and execute it cold
    /// (`estplan` suite). Honors the process-wide estimator override:
    /// `--no-estimate` makes this flavor plan exactly too.
    PlanEstimate,
    /// The reorganizer plan with the k-way tournament bin forced open at
    /// [`KWAY_SUITE_MIN`] products (`kway` suite): the plan is built
    /// exactly, then its bins are re-classified per case — no process-wide
    /// threshold override, so parallel grid cells cannot race.
    KwayMerge,
    /// The reorganizer plan built under a forced row-reorder strategy and
    /// executed from the cached plan (`reorder` suite). The strategy is
    /// carried per case — no process-wide override, so parallel grid cells
    /// cannot race — and the numeric result stays bit-identical because
    /// the plan un-permutes its output.
    Reordered(ReorderStrategy),
}

impl MethodSel {
    /// Display name in the paper's legend spelling.
    pub fn name(self) -> &'static str {
        match self {
            MethodSel::Baseline(m) => m.name(),
            MethodSel::Reorganizer => "Block-Reorganizer",
            MethodSel::PlanExact => "plan-exact",
            MethodSel::PlanEstimate => "plan-estimate",
            MethodSel::KwayMerge => "kway-merge",
            MethodSel::Reordered(ReorderStrategy::None) => "reorder-none",
            MethodSel::Reordered(ReorderStrategy::Degree) => "reorder-degree",
            MethodSel::Reordered(ReorderStrategy::Rcm) => "reorder-rcm",
            MethodSel::Reordered(ReorderStrategy::Cluster) => "reorder-cluster",
            MethodSel::Reordered(ReorderStrategy::Auto) => "reorder-auto",
        }
    }
}

/// `kway_min` the `kway` suite forces: low enough that every suite dataset
/// routes its heaviest rows through the tournament merge at tiny scale
/// (patents_main's tiny-scale rows top out at ~250 intermediate products).
pub const KWAY_SUITE_MIN: u64 = 128;

/// The thresholds a [`MethodSel::KwayMerge`] case (and the `kway` suite's
/// census) applies: what the engine would use for the width, with the
/// k-way bin opened at [`KWAY_SUITE_MIN`] intermediate products.
fn kway_suite_thresholds(ncols: usize) -> br_spgemm::accum::BinThresholds {
    br_spgemm::accum::BinThresholds {
        kway_min: KWAY_SUITE_MIN,
        ..effective_thresholds_for(ncols)
    }
}

/// Which modelled device a case runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceSel {
    /// Table I System 1.
    TitanXp,
    /// Table I System 2.
    TeslaV100,
    /// Table I System 3.
    Rtx2080Ti,
}

impl DeviceSel {
    /// Builds the configuration.
    pub fn config(self) -> DeviceConfig {
        match self {
            DeviceSel::TitanXp => DeviceConfig::titan_xp(),
            DeviceSel::TeslaV100 => DeviceConfig::tesla_v100(),
            DeviceSel::Rtx2080Ti => DeviceConfig::rtx_2080_ti(),
        }
    }

    /// Short slug used in case ids.
    pub fn slug(self) -> &'static str {
        match self {
            DeviceSel::TitanXp => "titan-xp",
            DeviceSel::TeslaV100 => "tesla-v100",
            DeviceSel::Rtx2080Ti => "rtx-2080-ti",
        }
    }
}

/// One (dataset × scale × method × device) grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchCase {
    /// Table II dataset name.
    pub dataset: &'static str,
    /// Surrogate scale.
    pub scale: ScaleFactor,
    /// Method under test.
    pub method: MethodSel,
    /// Target device.
    pub device: DeviceSel,
}

impl BenchCase {
    /// The stable identity string cases are matched by across reports.
    pub fn id(&self) -> String {
        format!(
            "{}@{}/{}/{}",
            self.dataset,
            self.scale.label(),
            self.method.name(),
            self.device.slug()
        )
    }
}

/// Runs a whole suite and assembles the report, with the worker count
/// resolved from the ambient [`par`] configuration (`--threads` override,
/// `BR_THREADS`, else available cores). `progress` receives one line per
/// completed case (pass `|_| {}` to silence).
pub fn run_suite(suite: Suite, progress: impl FnMut(&str)) -> BenchReport {
    run_suite_threaded(suite, par::effective_threads(None), progress)
}

/// [`run_suite`] with an explicit host worker count.
///
/// Grid cells are independent measurements, so they fan out over `threads`
/// scoped workers; results (and progress lines) are emitted in suite
/// definition order, and the service batch runs `threads` workers against
/// the single-flight plan cache — so everything in the report except the
/// wall-clock `host` section is byte-identical at any thread count.
pub fn run_suite_threaded(
    suite: Suite,
    threads: usize,
    mut progress: impl FnMut(&str),
) -> BenchReport {
    let started = Instant::now();
    let threads = threads.max(1);
    let config = ReorganizerConfig::default();
    let grid = suite.cases();
    let results: Vec<(CaseReport, Option<PlanCaseReport>)> =
        par::ordered_map(&grid, threads, |_, case| run_case(case, &config));
    let mut cases = Vec::with_capacity(results.len());
    let mut plan_cases = Vec::new();
    for (case, plan_case) in results {
        cases.push(case);
        plan_cases.extend(plan_case);
    }
    for report in &cases {
        progress(&format!(
            "{:<55} {:>14.0} cycles  {:>9.3} ms",
            report.id, report.metrics.makespan_cycles, report.metrics.total_ms
        ));
    }
    let chain = (suite == Suite::Chain).then(|| {
        let grid = chain_cases();
        let cases: Vec<ChainCaseReport> =
            par::ordered_map(&grid, threads, |_, &(dataset, workload)| {
                run_chain_case(dataset, workload)
            });
        for case in &cases {
            progress(&format!(
                "{:<55} {:>2} steps  {} hits / {} misses  {:>9.3} ms",
                case.id,
                case.steps.len(),
                case.cache_hits,
                case.cache_misses,
                case.total_ms
            ));
        }
        ChainSection { cases }
    });
    let service = run_service_batch(suite, threads);
    progress(&format!(
        "service batch: {} jobs, cache hit rate {:.2}",
        service.jobs, service.cache_hit_rate
    ));
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let per_sec = |n: u64| {
        if wall_ms > 0.0 {
            n as f64 / (wall_ms / 1e3)
        } else {
            0.0
        }
    };
    // Registry size at the end of the run. Stored under `host` (and
    // stripped by --no-host) because sample counts depend on what else
    // ran in the process, not on the suite's simulated results.
    let obs_totals = br_obs::global().totals();
    let host = Some(HostSection {
        threads: threads as u64,
        wall_ms,
        cases_per_sec: per_sec(cases.len() as u64),
        jobs_per_sec: per_sec(service.jobs),
        bins: Some(bin_census(suite)),
        obs: Some(ObsHostStats {
            families: obs_totals.families,
            samples: obs_totals.samples,
            span_events: obs_totals.span_events,
        }),
    });
    // The estimator setting that planned the estplan cases identifies the
    // section the same way config_fingerprint identifies the grid.
    let plan = (suite == Suite::Estplan).then(|| {
        let setting = effective_estimator();
        PlanSection {
            estimator_fingerprint: if setting.enabled {
                setting.config.fingerprint()
            } else {
                0
            },
            cases: plan_cases,
        }
    });
    BenchReport {
        schema_version: SCHEMA_VERSION,
        suite: suite.name().to_string(),
        git_sha: git_sha(),
        model_version: br_gpu_sim::MODEL_VERSION,
        config_fingerprint: config_fingerprint(&config),
        cases,
        service,
        plan,
        chain,
        host,
    }
}

/// The chain suite's grid: every canonical workload over the quick grid's
/// datasets, in a fixed, stable order.
pub fn chain_cases() -> Vec<(&'static str, Workload)> {
    let mut out = Vec::new();
    for dataset in ["harbor", "emailEnron", "patents_main"] {
        for workload in Workload::canonical() {
            out.push((dataset, workload));
        }
    }
    out
}

/// Runs one chain case: the workload's program over the dataset at tiny
/// scale, step by step through the plan-cached service path against a
/// fresh cache and a private registry — so the recorded hit/miss pattern
/// is intra-chain and a pure function of the program, independent of what
/// other grid cells run concurrently.
fn run_chain_case(dataset: &'static str, workload: Workload) -> ChainCaseReport {
    let a = RealWorldRegistry::get(dataset)
        .unwrap_or_else(|| panic!("chain suite references unknown dataset {dataset:?}"))
        .generate(ScaleFactor::Tiny);
    let device = DeviceConfig::titan_xp();
    let sim = GpuSimulator::new(device.clone());
    let pool = ScratchPool::new();
    let registry = Arc::new(Registry::new());
    let instruments = service_chain::register_chain_instruments(&registry);
    let cache = PlanCache::with_registry(8, registry.clone());
    let request = ChainRequest::workload(0, workload, &a);
    let outcome = service_chain::execute_chain(
        0,
        &device,
        &sim,
        &cache,
        &pool,
        None,
        ReorderStrategy::None,
        &instruments,
        &registry,
        request,
        0.0,
    )
    .unwrap_or_else(|e| panic!("chain case {dataset}/{} failed: {e:?}", workload.spec()));
    ChainCaseReport {
        id: format!("{dataset}@tiny/{}/titan-xp", workload.spec()),
        dataset: dataset.to_string(),
        workload: workload.spec(),
        steps: outcome
            .steps
            .iter()
            .map(|s| ChainStepReport {
                label: s.label.clone(),
                cache_hit: s.cache_hit,
                fresh_structure: s.fresh_structure,
                method: s.method.to_string(),
                total_ms: s.total_ms,
                product_nnz: s.product_nnz as u64,
                output_nnz: s.output_nnz as u64,
                fill_in_permille: s.fill_in_permille,
            })
            .collect(),
        cache_hits: outcome.cache_hits() as u64,
        cache_misses: outcome.cache_misses() as u64,
        structure_churn: outcome.structure_churn() as u64,
        total_ms: outcome.total_ms,
        result_nnz: outcome.result.nnz() as u64,
    }
}

/// Runs one grid point. Plan-building cases (`estplan` suite) also return
/// the planner's decision record for the report's plan section.
fn run_case(case: &BenchCase, config: &ReorganizerConfig) -> (CaseReport, Option<PlanCaseReport>) {
    let spec = RealWorldRegistry::get(case.dataset)
        .unwrap_or_else(|| panic!("suite references unknown dataset {:?}", case.dataset));
    let a = spec.generate(case.scale);
    let ctx = crate::harness::square_context(&a);
    let device = case.device.config();
    let mut plan_case = None;
    let run: SpgemmRun<f64> = match case.method {
        MethodSel::Baseline(m) => run_method(&ctx, m, &device).expect("square shapes always agree"),
        MethodSel::Reorganizer => BlockReorganizer::new(*config)
            .multiply_ctx(&ctx, &device)
            .expect("square shapes always agree")
            .to_spgemm_run(),
        MethodSel::KwayMerge => {
            // Exact plan, then the bins re-classified with the k-way bin
            // forced open. Bin membership only redirects rows between
            // merge kernels — the numeric result stays bit-identical.
            let mut plan = ReorgPlan::build(&ctx, config, &device);
            plan.bins = RowBins::classify(
                &plan.bins.row_products.clone(),
                kway_suite_thresholds(a.ncols()),
            );
            plan.execute(&ctx, &device, PlanMode::Cached)
                .expect("square shapes always agree")
                .to_spgemm_run()
        }
        MethodSel::Reordered(strategy) => {
            // The permutation is planned once and stored in the plan, so
            // the cached execution replays it exactly like a cache hit in
            // the service would.
            let plan = ReorgPlan::build_with_reorder(&ctx, config, &device, strategy);
            plan.execute(&ctx, &device, PlanMode::Cached)
                .expect("square shapes always agree")
                .to_spgemm_run()
        }
        MethodSel::PlanExact | MethodSel::PlanEstimate => {
            let setting = effective_estimator();
            let plan = if case.method == MethodSel::PlanEstimate && setting.enabled {
                ReorgPlan::build_estimated(&ctx, config, &device, &setting.config)
            } else {
                ReorgPlan::build(&ctx, config, &device)
            };
            plan_case = Some(PlanCaseReport {
                id: case.id(),
                mode: if plan.build.fallback {
                    "fallback"
                } else if plan.build.estimated {
                    "estimate"
                } else {
                    "exact"
                }
                .to_string(),
                method: plan.method.name().to_string(),
                ops: plan.build.ops,
                sampled_cols: plan.build.sampled_cols,
                rel_band_ppm: plan.build.rel_band_ppm,
            });
            plan.execute(&ctx, &device, PlanMode::Cold)
                .expect("square shapes always agree")
                .to_spgemm_run()
        }
    };
    let report = CaseReport {
        id: case.id(),
        dataset: case.dataset.to_string(),
        scale: case.scale.label(),
        method: case.method.name().to_string(),
        device: device.name.clone(),
        device_fingerprint: device.fingerprint(),
        metrics: metrics_of(&run),
    };
    (report, plan_case)
}

/// Folds a run's kernel profiles into the tracked counters.
fn metrics_of(run: &SpgemmRun<f64>) -> CaseMetrics {
    let phases: Vec<PhaseMetrics> = run
        .profiles
        .iter()
        .map(|p| PhaseMetrics {
            name: p.name.clone(),
            makespan_cycles: p.makespan_cycles,
            lbi: p.lbi(),
            l2_hit_rate: p.l2.hit_rate(),
            sync_stall_ratio: p.sync_stall_ratio(),
        })
        .collect();
    let makespan_cycles: f64 = phases.iter().map(|p| p.makespan_cycles).sum();
    let (accesses, hits) = run
        .profiles
        .iter()
        .fold((0u64, 0u64), |(a, h), p| (a + p.l2.accesses, h + p.l2.hits));
    let (busy, stalls) = run.profiles.iter().fold((0.0f64, 0.0f64), |(b, s), p| {
        (b + p.busy_cycles, s + p.sync_stall_cycles)
    });
    CaseMetrics {
        makespan_cycles,
        phases,
        total_ms: run.total_ms,
        lbi: worst_lbi(&run.profiles),
        l2_hit_rate: if accesses == 0 {
            0.0
        } else {
            hits as f64 / accesses as f64
        },
        sync_stall_ratio: if busy <= 0.0 { 0.0 } else { stalls / busy },
        gflops: run.gflops(),
        flops: run.flops,
        result_nnz: run.result.nnz() as u64,
    }
}

fn worst_lbi(profiles: &[KernelProfile]) -> f64 {
    profiles.iter().map(|p| p.lbi()).fold(0.0, f64::max)
}

/// The thresholds [`bin_census`] applies to a problem of width `ncols` in
/// `suite`: the `kway` suite censuses under its forced k-way thresholds —
/// the same ones its merge cases execute with — every other suite under
/// what the engine would actually apply (the `--bins` override when set,
/// else the width-aware recommendation).
fn suite_thresholds(suite: Suite, ncols: usize) -> br_spgemm::accum::BinThresholds {
    match suite {
        Suite::Kway => kway_suite_thresholds(ncols),
        _ => effective_thresholds_for(ncols),
    }
}

/// Censuses the adaptive engine's row bins over the suite's distinct
/// (dataset, scale) problems (each squared, as the grid runs them), under
/// [`suite_thresholds`]. The recorded thresholds are the first problem's,
/// in deterministic suite order — at one suite scale the recommendation is
/// uniform in practice. Kway rows additionally record a log2 histogram of
/// their run counts (A-row nonzeros): the tournament-tree widths the k-way
/// bin actually builds. Structure-only and deterministic; recorded in the
/// report's informational `host` section, never compared.
fn bin_census(suite: Suite) -> BinHostStats {
    let mut seen: Vec<(&'static str, String)> = Vec::new();
    let mut recorded: Option<br_spgemm::accum::BinThresholds> = None;
    let mut runs_hist: Vec<u64> = Vec::new();
    let mut stats = BinHostStats {
        tiny_max: 0,
        heavy_min: 0,
        tiny_rows: 0,
        medium_rows: 0,
        heavy_rows: 0,
        tiny_products: 0,
        medium_products: 0,
        heavy_products: 0,
        kway_min: None,
        kway_rows: Some(0),
        kway_products: Some(0),
        runs_per_row: None,
    };
    for case in suite.cases() {
        let key = (case.dataset, case.scale.label());
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let a = RealWorldRegistry::get(case.dataset)
            .expect("suite datasets are registered")
            .generate(case.scale);
        let thresholds = suite_thresholds(suite, a.ncols());
        if recorded.is_none() {
            recorded = Some(thresholds);
            stats.tiny_max = thresholds.tiny_max;
            stats.heavy_min = thresholds.heavy_min;
            stats.kway_min = Some(thresholds.kway_min);
        }
        let bins = RowBins::of(&a, &a, thresholds).expect("square shapes always agree");
        for (r, &p) in bins.row_products.iter().enumerate() {
            if thresholds.bin_of(p) == br_spgemm::accum::RowBin::Kway {
                let runs = a.row_nnz(r).max(1) as u64;
                let bucket = (63 - runs.leading_zeros()) as usize;
                if runs_hist.len() <= bucket {
                    runs_hist.resize(bucket + 1, 0);
                }
                runs_hist[bucket] += 1;
            }
        }
        stats.tiny_rows += bins.rows[0];
        stats.medium_rows += bins.rows[1];
        stats.heavy_rows += bins.rows[2];
        stats.kway_rows = Some(stats.kway_rows.unwrap_or(0) + bins.rows[3]);
        stats.tiny_products += bins.products[0];
        stats.medium_products += bins.products[1];
        stats.heavy_products += bins.products[2];
        stats.kway_products = Some(stats.kway_products.unwrap_or(0) + bins.products[3]);
    }
    stats.runs_per_row = Some(runs_hist);
    stats
}

/// Exercises the `br-service` plan cache with a deterministic batch: a few
/// distinct matrices, each multiplied several times, so the cache sees
/// both cold misses and warm hits regardless of worker interleaving.
fn run_service_batch(suite: Suite, threads: usize) -> ServiceSection {
    let (repeats, scale) = match suite {
        Suite::Quick => (3usize, ScaleFactor::Tiny),
        Suite::Full => (4, ScaleFactor::Default),
        Suite::Scaling | Suite::Estplan | Suite::Kway | Suite::Reorder | Suite::Chain => {
            (3, ScaleFactor::Tiny)
        }
    };
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for dataset in ["harbor", "emailEnron"] {
        let spec = RealWorldRegistry::get(dataset).expect("registry dataset");
        let a = Arc::new(spec.generate(scale));
        for _ in 0..repeats {
            jobs.push(JobRequest::square(id, a.clone()).with_label(dataset));
            id += 1;
        }
    }
    // The plan cache is single-flight, so workers racing on the same cold
    // key produce exactly one miss however they interleave — the counters
    // below are a function of the job list alone, and the report stays
    // byte-identical at any worker count.
    let workers = threads.min(jobs.len()).max(1);
    // Record job-lifecycle counters and spans in the process-wide registry
    // so `bench run --metrics` covers the service batch too.
    let batch = SpgemmService::run_batch(
        ServiceConfig::uniform(DeviceConfig::titan_xp(), workers, 8)
            .with_registry(br_obs::global_arc()),
        jobs,
    );
    let stats = &batch.stats;
    ServiceSection {
        jobs: stats.jobs as u64,
        failures: stats.failures as u64,
        cache_hits: stats.cache.hits,
        cache_misses: stats.cache.misses,
        cache_evictions: stats.cache.evictions,
        cache_hit_rate: stats.cache.hit_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_SUITES: [Suite; 7] = [
        Suite::Quick,
        Suite::Full,
        Suite::Scaling,
        Suite::Estplan,
        Suite::Kway,
        Suite::Reorder,
        Suite::Chain,
    ];

    #[test]
    fn suite_parsing_and_names_roundtrip() {
        for s in ALL_SUITES {
            assert_eq!(Suite::parse(s.name()), Some(s));
        }
        assert_eq!(Suite::parse("nope"), None);
    }

    #[test]
    fn case_ids_are_unique_within_each_suite() {
        for suite in ALL_SUITES {
            let ids: Vec<String> = suite.cases().iter().map(BenchCase::id).collect();
            let mut dedup = ids.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(ids.len(), dedup.len(), "{} has duplicate ids", suite.name());
        }
    }

    #[test]
    fn quick_suite_references_known_datasets_only() {
        for suite in ALL_SUITES {
            for case in suite.cases() {
                assert!(
                    RealWorldRegistry::get(case.dataset).is_some(),
                    "{} references unknown dataset {}",
                    suite.name(),
                    case.dataset
                );
            }
        }
    }

    #[test]
    fn quick_suite_run_is_deterministic() {
        let mut a = run_suite(Suite::Quick, |_| {});
        let mut b = run_suite(Suite::Quick, |_| {});
        // Whole-report equality except provenance (git_sha is stable here
        // anyway) and the wall-clock host section, which is the one part
        // that legitimately differs between runs.
        assert_eq!(a.cases, b.cases, "cycle counts must be bit-identical");
        assert_eq!(a.service.cache_hits, b.service.cache_hits);
        a.host = None;
        b.host = None;
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn quick_suite_is_byte_identical_at_any_thread_count() {
        // The tentpole contract: with the host section stripped, the
        // report file is byte-for-byte the same whether the grid and the
        // service batch ran on 1 worker or several.
        let mut seq = run_suite_threaded(Suite::Quick, 1, |_| {});
        let mut par4 = run_suite_threaded(Suite::Quick, 4, |_| {});
        assert_eq!(seq.host.as_ref().map(|h| h.threads), Some(1));
        assert_eq!(par4.host.as_ref().map(|h| h.threads), Some(4));
        seq.host = None;
        par4.host = None;
        assert_eq!(seq.to_json(), par4.to_json());
    }

    #[test]
    fn bin_census_is_deterministic_and_counts_every_row() {
        let census = bin_census(Suite::Quick);
        assert_eq!(census, bin_census(Suite::Quick));
        // The recorded pair is what the engine applies to the suite's
        // first problem (harbor, tiny scale).
        let harbor = RealWorldRegistry::get("harbor")
            .unwrap()
            .generate(ScaleFactor::Tiny);
        let thresholds = effective_thresholds_for(harbor.ncols());
        assert_eq!(census.tiny_max, thresholds.tiny_max);
        assert_eq!(census.heavy_min, thresholds.heavy_min);
        // The quick suite censuses under the engine's own thresholds,
        // where the k-way bin is off.
        assert_eq!(census.kway_min, Some(thresholds.kway_min));
        assert_eq!(census.kway_rows, Some(0));
        assert_eq!(census.kway_products, Some(0));
        assert_eq!(census.runs_per_row, Some(vec![]));
        // Every distinct (dataset, scale) problem's rows are counted once.
        let expected_rows: u64 = ["harbor", "emailEnron", "patents_main"]
            .iter()
            .map(|d| {
                RealWorldRegistry::get(d)
                    .unwrap()
                    .generate(ScaleFactor::Tiny)
                    .nrows() as u64
            })
            .sum();
        assert_eq!(
            census.tiny_rows + census.medium_rows + census.heavy_rows + census.kway_rows.unwrap(),
            expected_rows
        );
        assert!(census.tiny_rows > 0, "{census:?}");
    }

    #[test]
    fn kway_census_routes_rows_and_sizes_their_trees() {
        // Under the kway suite's forced thresholds the census must move
        // rows into the k-way bin and the runs histogram must cover
        // exactly those rows.
        let census = bin_census(Suite::Kway);
        assert_eq!(census, bin_census(Suite::Kway));
        assert_eq!(census.kway_min, Some(KWAY_SUITE_MIN));
        let kway_rows = census.kway_rows.expect("kway census records the bin");
        assert!(kway_rows > 0, "{census:?}");
        assert!(census.kway_products.unwrap() >= kway_rows * KWAY_SUITE_MIN);
        let hist = census.runs_per_row.as_ref().unwrap();
        assert_eq!(hist.iter().sum::<u64>(), kway_rows, "{census:?}");
    }

    #[test]
    fn quick_suite_measures_real_work() {
        let report = run_suite(Suite::Quick, |_| {});
        assert_eq!(report.cases.len(), 9);
        for case in &report.cases {
            assert!(
                case.metrics.makespan_cycles > 0.0,
                "{} has no cycles",
                case.id
            );
            assert!(case.metrics.result_nnz > 0, "{} empty result", case.id);
            assert!(!case.metrics.phases.is_empty(), "{} has no phases", case.id);
            let phase_sum: f64 = case.metrics.phases.iter().map(|p| p.makespan_cycles).sum();
            assert!(
                (phase_sum - case.metrics.makespan_cycles).abs() < 1e-6,
                "{} phases do not sum to the total",
                case.id
            );
        }
        assert_eq!(report.service.failures, 0);
        assert!(
            report.service.cache_hits >= 2,
            "repeated jobs must hit the plan cache"
        );
    }

    /// ISSUE acceptance criterion: on the quick grid's datasets the
    /// estimated plan build costs ≤ half the exact precalc (modeled ops),
    /// never falls back, produces identical output, and its cold execution
    /// stays within the compare gate's makespan tolerance.
    #[test]
    fn estplan_estimate_flavor_halves_cold_plan_cost_at_matched_makespan() {
        let report = run_suite(Suite::Estplan, |_| {});
        let plan = report
            .plan
            .as_ref()
            .expect("estplan records a plan section");
        assert_eq!(report.cases.len(), 6);
        assert_eq!(plan.cases.len(), 6);
        for dataset in ["harbor", "emailEnron", "patents_main"] {
            let case = |flavor: &str| {
                let id = format!("{dataset}@tiny/{flavor}/titan-xp");
                (
                    report.case(&id).unwrap_or_else(|| panic!("missing {id}")),
                    plan.cases
                        .iter()
                        .find(|c| c.id == id)
                        .unwrap_or_else(|| panic!("missing plan record {id}")),
                )
            };
            let (exact_case, exact_plan) = case("plan-exact");
            let (est_case, est_plan) = case("plan-estimate");
            assert_eq!(exact_plan.mode, "exact");
            assert_eq!(exact_plan.method, "reorganized");
            assert_eq!(
                est_plan.mode, "estimate",
                "{dataset}: band {} ppm forced a fallback",
                est_plan.rel_band_ppm
            );
            assert!(
                exact_plan.ops >= 2 * est_plan.ops,
                "{dataset}: cold-plan cost must drop >= 2x (exact {} vs estimated {})",
                exact_plan.ops,
                est_plan.ops
            );
            // Identical work and identical results whichever way it planned.
            assert_eq!(exact_case.metrics.flops, est_case.metrics.flops);
            assert_eq!(exact_case.metrics.result_nnz, est_case.metrics.result_nnz);
            // Estimation may only change simulated scheduling within the
            // compare gate's tolerance, never degrade it beyond the gate.
            let delta = (est_case.metrics.makespan_cycles - exact_case.metrics.makespan_cycles)
                / exact_case.metrics.makespan_cycles;
            assert!(
                delta <= 0.05,
                "{dataset}: estimated plan regressed makespan {:.2}% (method {})",
                delta * 100.0,
                est_plan.method
            );
        }
    }

    /// ISSUE acceptance criterion: forcing the k-way bin open must keep
    /// the numeric work bit-identical on every dataset and show a modeled
    /// merge-phase improvement on at least one heavy-row dataset.
    #[test]
    fn kway_suite_improves_the_merge_phase_on_a_heavy_dataset() {
        let report = run_suite(Suite::Kway, |_| {});
        assert_eq!(report.cases.len(), 6);
        let merge_cycles = |case: &CaseReport| -> f64 {
            case.metrics
                .phases
                .iter()
                .filter(|p| p.name.ends_with("-merge"))
                .map(|p| p.makespan_cycles)
                .sum()
        };
        let mut improved = Vec::new();
        for dataset in ["harbor", "emailEnron", "patents_main"] {
            let base = report
                .case(&format!("{dataset}@tiny/Block-Reorganizer/titan-xp"))
                .unwrap_or_else(|| panic!("missing baseline case for {dataset}"));
            let kway = report
                .case(&format!("{dataset}@tiny/kway-merge/titan-xp"))
                .unwrap_or_else(|| panic!("missing kway case for {dataset}"));
            // Bin membership redirects rows between merge kernels; the
            // numeric work and result must not change.
            assert_eq!(base.metrics.flops, kway.metrics.flops, "{dataset}");
            assert_eq!(
                base.metrics.result_nnz, kway.metrics.result_nnz,
                "{dataset}"
            );
            assert!(
                kway.metrics.phases.iter().any(|p| p.name == "kway-merge"),
                "{dataset}: forced thresholds must route rows to the kway kernel"
            );
            if merge_cycles(kway) < merge_cycles(base) {
                improved.push(dataset);
            }
        }
        assert!(
            !improved.is_empty(),
            "no dataset improved its merge phase under the kway bin"
        );
    }

    /// The kway report is byte-identical across thread counts, like the
    /// quick suite — the contract the bench_gate kway step byte-compares.
    #[test]
    fn kway_suite_is_byte_identical_at_any_thread_count() {
        let mut seq = run_suite_threaded(Suite::Kway, 1, |_| {});
        let mut par4 = run_suite_threaded(Suite::Kway, 4, |_| {});
        seq.host = None;
        par4.host = None;
        assert_eq!(seq.to_json(), par4.to_json());
    }

    /// The estplan report is byte-identical across thread counts and
    /// reruns, like the quick suite — the determinism contract the
    /// bench_gate estimator step byte-compares.
    #[test]
    fn estplan_suite_is_byte_identical_at_any_thread_count() {
        let mut seq = run_suite_threaded(Suite::Estplan, 1, |_| {});
        let mut par4 = run_suite_threaded(Suite::Estplan, 4, |_| {});
        seq.host = None;
        par4.host = None;
        assert_eq!(seq.to_json(), par4.to_json());
    }

    /// ISSUE acceptance criterion: every reorder strategy keeps the
    /// numeric work bit-identical on every dataset, and at least one
    /// strategy improves LBI or L2 hit rate over `reorder-none` on at
    /// least one dataset.
    #[test]
    fn reorder_suite_improves_lbi_or_l2_somewhere_without_changing_results() {
        let report = run_suite(Suite::Reorder, |_| {});
        assert_eq!(report.cases.len(), 12);
        let mut improved = Vec::new();
        for dataset in ["harbor", "emailEnron", "patents_main"] {
            let base = report
                .case(&format!("{dataset}@tiny/reorder-none/titan-xp"))
                .unwrap_or_else(|| panic!("missing baseline case for {dataset}"));
            for flavor in ["reorder-degree", "reorder-rcm", "reorder-cluster"] {
                let reordered = report
                    .case(&format!("{dataset}@tiny/{flavor}/titan-xp"))
                    .unwrap_or_else(|| panic!("missing {flavor} case for {dataset}"));
                // Reordering only permutes the launch schedule; the
                // numeric work and the un-permuted result must not change.
                assert_eq!(
                    base.metrics.flops, reordered.metrics.flops,
                    "{dataset}/{flavor}"
                );
                assert_eq!(
                    base.metrics.result_nnz, reordered.metrics.result_nnz,
                    "{dataset}/{flavor}"
                );
                if reordered.metrics.lbi < base.metrics.lbi
                    || reordered.metrics.l2_hit_rate > base.metrics.l2_hit_rate
                {
                    improved.push(format!("{dataset}/{flavor}"));
                }
            }
        }
        assert!(
            !improved.is_empty(),
            "no strategy improved LBI or L2 hit rate over reorder-none"
        );
    }

    /// The reorder report is byte-identical across thread counts, like the
    /// quick suite — the contract the bench_gate reorder step byte-compares.
    #[test]
    fn reorder_suite_is_byte_identical_at_any_thread_count() {
        let mut seq = run_suite_threaded(Suite::Reorder, 1, |_| {});
        let mut par4 = run_suite_threaded(Suite::Reorder, 4, |_| {});
        seq.host = None;
        par4.host = None;
        assert_eq!(seq.to_json(), par4.to_json());
    }

    /// ISSUE acceptance criterion: the chain suite runs all four canonical
    /// workloads per dataset; the Galerkin chain shows at least one
    /// plan-cache hit (the refresh products) while iterated squaring
    /// misses on every step (structure churn).
    #[test]
    fn chain_suite_caches_galerkin_and_churns_squaring() {
        let report = run_suite(Suite::Chain, |_| {});
        assert!(report.cases.is_empty(), "the chain suite has no grid cases");
        let chain = report.chain.as_ref().expect("chain suite records chains");
        assert_eq!(chain.cases.len(), 12, "3 datasets x 4 canonical workloads");
        for dataset in ["harbor", "emailEnron", "patents_main"] {
            let case = |workload: &str| {
                let id = format!("{dataset}@tiny/{workload}/titan-xp");
                chain
                    .cases
                    .iter()
                    .find(|c| c.id == id)
                    .unwrap_or_else(|| panic!("missing chain case {id}"))
            };
            let galerkin = case("galerkin");
            assert_eq!(galerkin.steps.len(), 4);
            let hits: Vec<bool> = galerkin.steps.iter().map(|s| s.cache_hit).collect();
            assert_eq!(
                hits,
                [false, false, true, true],
                "{dataset}: the refresh products reuse the restrict/coarsen plans"
            );
            assert_eq!(galerkin.cache_hits, 2);
            assert_eq!(galerkin.structure_churn, 2);

            let square = case("square:3");
            assert_eq!(square.steps.len(), 3);
            assert_eq!(square.cache_hits, 0, "{dataset}: squaring churns structure");
            assert_eq!(square.cache_misses, 3);
            assert_eq!(square.structure_churn, 3);

            assert_eq!(case("triangle").steps.len(), 1);
            assert_eq!(case("markov:3,0.001").steps.len(), 3);
            for c in [galerkin, square] {
                assert!(c.result_nnz > 0, "{}: empty result", c.id);
                assert!(c.total_ms > 0.0, "{}: no simulated time", c.id);
                assert!(
                    c.steps.iter().all(|s| s.total_ms > 0.0),
                    "{}: a step reports no makespan",
                    c.id
                );
            }
        }
    }

    /// The chain report is byte-identical across thread counts, like the
    /// quick suite — the contract the bench_gate chain step byte-compares.
    #[test]
    fn chain_suite_is_byte_identical_at_any_thread_count() {
        let mut seq = run_suite_threaded(Suite::Chain, 1, |_| {});
        let mut par4 = run_suite_threaded(Suite::Chain, 4, |_| {});
        seq.host = None;
        par4.host = None;
        assert_eq!(seq.to_json(), par4.to_json());
    }
}
