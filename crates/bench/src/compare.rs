//! Report comparison — the regression gate.
//!
//! Diffs a current [`BenchReport`] against a checked-in baseline, metric
//! by metric, with per-metric tolerances. Cycle counts and simulated time
//! use relative thresholds (the gate's headline is "no case more than 5%
//! slower"); unit-interval rates (L2 hit rate, sync-stall ratio, cache hit
//! rate) use absolute thresholds. Identity fields (`flops`, `result_nnz`,
//! schema/model versions, fingerprints) must match exactly — a mismatch
//! means the two reports measured different work, and comparing their
//! cycles would be meaningless.

use crate::schema::BenchReport;

/// Per-metric tolerance thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// Maximum allowed relative increase of a case's total
    /// `makespan_cycles` and `total_ms`, as a percentage (default 5.0).
    pub cycles_pct: f64,
    /// Maximum allowed relative drop of a case's `gflops`, in percent.
    pub gflops_pct: f64,
    /// Maximum allowed increase of the worst-phase LBI, relative percent.
    pub lbi_pct: f64,
    /// Maximum allowed absolute drop of the aggregate L2 hit rate.
    pub l2_hit_abs: f64,
    /// Maximum allowed absolute increase of the sync-stall ratio.
    pub sync_stall_abs: f64,
    /// Maximum allowed absolute drop of the service cache hit rate.
    pub cache_hit_abs: f64,
    /// Maximum allowed relative increase of a plan case's modeled build
    /// `ops` — the cold-plan latency gate of the `estplan` suite (default
    /// 10.0).
    pub plan_ops_pct: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            cycles_pct: 5.0,
            gflops_pct: 5.0,
            lbi_pct: 5.0,
            l2_hit_abs: 0.02,
            sync_stall_abs: 0.02,
            cache_hit_abs: 0.0,
            plan_ops_pct: 10.0,
        }
    }
}

/// Severity of one comparison row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance.
    Ok,
    /// Moved in the *good* direction beyond the threshold (worth a look,
    /// never fails the gate).
    Improved,
    /// Beyond tolerance in the bad direction — fails the gate.
    Regressed,
    /// Identity mismatch (different work, missing case, version skew) —
    /// fails the gate.
    Error,
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Row {
    /// `<case-id> <metric>` label.
    pub label: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub current: f64,
    /// Signed change in the metric's native unit (percent for relative
    /// metrics, absolute delta for rates).
    pub delta: f64,
    /// Outcome.
    pub verdict: Verdict,
}

/// Full outcome of one comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Suite name of the compared reports (the current report's).
    pub suite: String,
    /// Every compared metric, in report order.
    pub rows: Vec<Row>,
    /// Structural/identity errors (missing cases, version skew, …).
    pub errors: Vec<String>,
    /// Cases (grid, plan, and chain) matched between the reports and
    /// compared metric by metric.
    pub cases_compared: usize,
    /// Compared cases with at least one regressed metric.
    pub cases_regressed: usize,
    /// Host wall-clock throughput of both reports, when recorded — shown
    /// at the end of [`Comparison::render`] for the human reading the
    /// table. Purely informational: never a row, never gated.
    pub host_info: Option<String>,
}

impl Comparison {
    /// True when the gate should fail (any regression or error).
    pub fn has_regressions(&self) -> bool {
        !self.errors.is_empty() || self.rows.iter().any(|r| r.verdict == Verdict::Regressed)
    }

    /// Rows beyond threshold (either direction) — the interesting subset.
    pub fn notable(&self) -> Vec<&Row> {
        self.rows
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Regressed | Verdict::Improved))
            .collect()
    }

    /// Renders the human-readable table: errors first, then every
    /// out-of-tolerance row, then a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.errors {
            out.push_str(&format!("ERROR     {e}\n"));
        }
        let notable = self.notable();
        if !notable.is_empty() {
            out.push_str(&format!(
                "{:<68} {:>14} {:>14} {:>9}\n",
                "metric", "baseline", "current", "delta"
            ));
            for r in &notable {
                let tag = match r.verdict {
                    Verdict::Regressed => "REGRESSED",
                    Verdict::Improved => "improved",
                    _ => unreachable!("notable() only returns out-of-tolerance rows"),
                };
                out.push_str(&format!(
                    "{:<58} {tag:>9} {:>14.4} {:>14.4} {:>+8.2}{}\n",
                    r.label,
                    r.base,
                    r.current,
                    r.delta,
                    if r.label.ends_with("_rate") || r.label.ends_with("_ratio") {
                        ""
                    } else {
                        "%"
                    }
                ));
            }
        }
        let regressed = self
            .rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regressed)
            .count();
        let improved = self
            .rows
            .iter()
            .filter(|r| r.verdict == Verdict::Improved)
            .count();
        out.push_str(&format!(
            "{}: {} cases compared ({} regressed); {} metrics compared: {} regressed, {} improved, {} errors\n",
            self.suite,
            self.cases_compared,
            self.cases_regressed,
            self.rows.len(),
            regressed,
            improved,
            self.errors.len()
        ));
        if let Some(info) = &self.host_info {
            out.push_str(&format!(
                "host throughput (informational, not gated): {info}\n"
            ));
        }
        out
    }
}

/// Compares `current` against `baseline` under the given thresholds.
///
/// The `host` section (wall clock, worker count, throughput) is *never*
/// compared: it is the one part of a report that legitimately differs from
/// run to run and from machine to machine, so a host-only difference —
/// including a baseline with no host section at all — compares clean.
pub fn compare(baseline: &BenchReport, current: &BenchReport, t: &Thresholds) -> Comparison {
    let mut rows: Vec<Row> = Vec::new();
    let mut errors = Vec::new();
    let mut cases_compared = 0usize;
    let mut cases_regressed = 0usize;
    // Tallies one compared case: everything pushed since `before` belongs
    // to it, so a regressed row there marks the case regressed.
    let close_case = |rows: &[Row], before: usize, compared: &mut usize, regr: &mut usize| {
        *compared += 1;
        if rows[before..]
            .iter()
            .any(|r| r.verdict == Verdict::Regressed)
        {
            *regr += 1;
        }
    };
    if baseline.suite != current.suite {
        errors.push(format!(
            "suite mismatch: baseline is {:?}, current is {:?}",
            baseline.suite, current.suite
        ));
    }
    if baseline.model_version != current.model_version {
        errors.push(format!(
            "timing-model version changed ({} -> {}): cycle deltas are expected; \
             refresh the baseline instead of comparing",
            baseline.model_version, current.model_version
        ));
    }
    if baseline.config_fingerprint != current.config_fingerprint {
        errors.push("reorganizer config fingerprint differs between reports".to_string());
    }
    for base_case in &baseline.cases {
        let Some(cur_case) = current.case(&base_case.id) else {
            errors.push(format!("case {} missing from current report", base_case.id));
            continue;
        };
        if base_case.device_fingerprint != cur_case.device_fingerprint {
            errors.push(format!(
                "case {}: device model changed (fingerprint mismatch)",
                base_case.id
            ));
            continue;
        }
        let (b, c) = (&base_case.metrics, &cur_case.metrics);
        if b.flops != c.flops || b.result_nnz != c.result_nnz {
            errors.push(format!(
                "case {}: workload identity changed (flops {} -> {}, nnz {} -> {})",
                base_case.id, b.flops, c.flops, b.result_nnz, c.result_nnz
            ));
            continue;
        }
        let id = &base_case.id;
        let before = rows.len();
        rows.push(relative_row(
            format!("{id} makespan_cycles"),
            b.makespan_cycles,
            c.makespan_cycles,
            t.cycles_pct,
            BadDirection::Up,
        ));
        rows.push(relative_row(
            format!("{id} total_ms"),
            b.total_ms,
            c.total_ms,
            t.cycles_pct,
            BadDirection::Up,
        ));
        rows.push(relative_row(
            format!("{id} gflops"),
            b.gflops,
            c.gflops,
            t.gflops_pct,
            BadDirection::Down,
        ));
        rows.push(relative_row(
            format!("{id} lbi"),
            b.lbi,
            c.lbi,
            t.lbi_pct,
            BadDirection::Up,
        ));
        rows.push(absolute_row(
            format!("{id} l2_hit_rate"),
            b.l2_hit_rate,
            c.l2_hit_rate,
            t.l2_hit_abs,
            BadDirection::Down,
        ));
        rows.push(absolute_row(
            format!("{id} sync_stall_ratio"),
            b.sync_stall_ratio,
            c.sync_stall_ratio,
            t.sync_stall_abs,
            BadDirection::Up,
        ));
        close_case(&rows, before, &mut cases_compared, &mut cases_regressed);
    }
    for cur_case in &current.cases {
        if baseline.case(&cur_case.id).is_none() {
            // New cases are informational: the suite grew, nothing to
            // compare against yet.
            rows.push(Row {
                label: format!("{} (new case)", cur_case.id),
                base: 0.0,
                current: cur_case.metrics.makespan_cycles,
                delta: 0.0,
                verdict: Verdict::Ok,
            });
        }
    }
    if baseline.service.jobs != current.service.jobs {
        errors.push(format!(
            "service batch size changed ({} -> {} jobs)",
            baseline.service.jobs, current.service.jobs
        ));
    } else {
        rows.push(absolute_row(
            "service cache_hit_rate".to_string(),
            baseline.service.cache_hit_rate,
            current.service.cache_hit_rate,
            t.cache_hit_abs,
            BadDirection::Down,
        ));
        if current.service.failures > 0 {
            errors.push(format!(
                "service batch has {} failed jobs",
                current.service.failures
            ));
        }
    }
    match (&baseline.plan, &current.plan) {
        (Some(base_plan), Some(cur_plan)) => {
            if base_plan.estimator_fingerprint != cur_plan.estimator_fingerprint {
                errors.push("estimator config fingerprint differs between reports".to_string());
            } else {
                for base_case in &base_plan.cases {
                    let Some(cur_case) = cur_plan.cases.iter().find(|c| c.id == base_case.id)
                    else {
                        errors.push(format!(
                            "plan case {} missing from current report",
                            base_case.id
                        ));
                        continue;
                    };
                    // A changed mode or method means the planner made a
                    // different decision — like a model change, refresh
                    // the baseline instead of comparing its cost.
                    if base_case.mode != cur_case.mode || base_case.method != cur_case.method {
                        errors.push(format!(
                            "plan case {}: planning decision changed ({}/{} -> {}/{})",
                            base_case.id,
                            base_case.mode,
                            base_case.method,
                            cur_case.mode,
                            cur_case.method
                        ));
                        continue;
                    }
                    let before = rows.len();
                    rows.push(relative_row(
                        format!("{} plan_ops", base_case.id),
                        base_case.ops as f64,
                        cur_case.ops as f64,
                        t.plan_ops_pct,
                        BadDirection::Up,
                    ));
                    close_case(&rows, before, &mut cases_compared, &mut cases_regressed);
                }
            }
        }
        (Some(_), None) => {
            errors.push(format!(
                "plan section missing from current {:?} report (baseline {:?} has one)",
                current.suite, baseline.suite
            ));
        }
        // A new plan section against a pre-estimator baseline is
        // informational, like a new case: nothing to compare against yet.
        (None, _) => {}
    }
    match (&baseline.chain, &current.chain) {
        (Some(base_chain), Some(cur_chain)) => {
            for base_case in &base_chain.cases {
                let Some(cur_case) = cur_chain.cases.iter().find(|c| c.id == base_case.id) else {
                    errors.push(format!(
                        "chain case {} missing from current report",
                        base_case.id
                    ));
                    continue;
                };
                // The hit/miss/churn pattern, step methods, and output
                // sizes are identity: a change means the chain planned or
                // computed different work, so timing deltas are
                // meaningless — refresh the baseline instead.
                if base_case.result_nnz != cur_case.result_nnz {
                    errors.push(format!(
                        "chain case {}: result changed (nnz {} -> {})",
                        base_case.id, base_case.result_nnz, cur_case.result_nnz
                    ));
                    continue;
                }
                let base_shape: Vec<_> = base_case
                    .steps
                    .iter()
                    .map(|s| {
                        (
                            &s.label,
                            s.cache_hit,
                            s.fresh_structure,
                            &s.method,
                            s.output_nnz,
                        )
                    })
                    .collect();
                let cur_shape: Vec<_> = cur_case
                    .steps
                    .iter()
                    .map(|s| {
                        (
                            &s.label,
                            s.cache_hit,
                            s.fresh_structure,
                            &s.method,
                            s.output_nnz,
                        )
                    })
                    .collect();
                if base_shape != cur_shape {
                    errors.push(format!(
                        "chain case {}: per-step plan behaviour changed \
                         (labels, cache hits, structure churn, methods, or step outputs differ)",
                        base_case.id
                    ));
                    continue;
                }
                let before = rows.len();
                rows.push(relative_row(
                    format!("{} chain_total_ms", base_case.id),
                    base_case.total_ms,
                    cur_case.total_ms,
                    t.cycles_pct,
                    BadDirection::Up,
                ));
                for (i, (b, c)) in base_case.steps.iter().zip(&cur_case.steps).enumerate() {
                    rows.push(relative_row(
                        format!("{} step{}:{} total_ms", base_case.id, i, b.label),
                        b.total_ms,
                        c.total_ms,
                        t.cycles_pct,
                        BadDirection::Up,
                    ));
                }
                close_case(&rows, before, &mut cases_compared, &mut cases_regressed);
            }
        }
        (Some(_), None) => {
            errors.push(format!(
                "chain section missing from current {:?} report (baseline {:?} has one)",
                current.suite, baseline.suite
            ));
        }
        // A new chain section against a pre-chain baseline is
        // informational, like a new case: nothing to compare against yet.
        (None, _) => {}
    }
    let describe_host = |r: &BenchReport| {
        r.host.as_ref().map(|h| {
            format!(
                "{:.0} ms wall / {:.2} cases/s / {} threads",
                h.wall_ms, h.cases_per_sec, h.threads
            )
        })
    };
    let host_info = match (describe_host(baseline), describe_host(current)) {
        (None, None) => None,
        (b, c) => Some(format!(
            "baseline {} -> current {}",
            b.unwrap_or_else(|| "(not recorded)".to_string()),
            c.unwrap_or_else(|| "(not recorded)".to_string()),
        )),
    };
    Comparison {
        suite: current.suite.clone(),
        rows,
        errors,
        cases_compared,
        cases_regressed,
        host_info,
    }
}

/// Which direction of change is a regression for a metric.
#[derive(Clone, Copy)]
enum BadDirection {
    /// Larger is worse (cycles, stalls, LBI).
    Up,
    /// Smaller is worse (GFLOPS, hit rates).
    Down,
}

fn relative_row(label: String, base: f64, current: f64, pct: f64, bad: BadDirection) -> Row {
    // Guard the degenerate baseline: treat any appearance of a nonzero
    // value where the baseline had ~0 as out-of-tolerance in the
    // appropriate direction rather than dividing by zero.
    let delta = if base.abs() < 1e-12 {
        if current.abs() < 1e-12 {
            0.0
        } else {
            f64::INFINITY.copysign(current)
        }
    } else {
        (current - base) / base * 100.0
    };
    let verdict = verdict_of(delta, pct, bad);
    Row {
        label,
        base,
        current,
        delta,
        verdict,
    }
}

fn absolute_row(label: String, base: f64, current: f64, tol: f64, bad: BadDirection) -> Row {
    let delta = current - base;
    let verdict = verdict_of(delta, tol, bad);
    Row {
        label,
        base,
        current,
        delta,
        verdict,
    }
}

fn verdict_of(delta: f64, tol: f64, bad: BadDirection) -> Verdict {
    let signed = match bad {
        BadDirection::Up => delta,
        BadDirection::Down => -delta,
    };
    if signed > tol {
        Verdict::Regressed
    } else if signed < -tol {
        Verdict::Improved
    } else {
        Verdict::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{CaseMetrics, CaseReport, PhaseMetrics, ServiceSection, SCHEMA_VERSION};

    fn metrics(cycles: f64) -> CaseMetrics {
        CaseMetrics {
            makespan_cycles: cycles,
            phases: vec![PhaseMetrics {
                name: "expansion".to_string(),
                makespan_cycles: cycles,
                lbi: 1.2,
                l2_hit_rate: 0.6,
                sync_stall_ratio: 0.01,
            }],
            total_ms: cycles / 1_000_000.0,
            lbi: 1.2,
            l2_hit_rate: 0.6,
            sync_stall_ratio: 0.01,
            gflops: 2.0,
            flops: 1000,
            result_nnz: 500,
        }
    }

    fn report(cycles: f64) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            suite: "quick".to_string(),
            git_sha: "abc".to_string(),
            model_version: 1,
            config_fingerprint: 9,
            cases: vec![CaseReport {
                id: "harbor@tiny/row-product/titan-xp".to_string(),
                dataset: "harbor".to_string(),
                scale: "tiny".to_string(),
                method: "row-product".to_string(),
                device: "NVIDIA TITAN Xp".to_string(),
                device_fingerprint: 3,
                metrics: metrics(cycles),
            }],
            service: ServiceSection {
                jobs: 6,
                failures: 0,
                cache_hits: 4,
                cache_misses: 2,
                cache_evictions: 0,
                cache_hit_rate: 2.0 / 3.0,
            },
            plan: None,
            chain: None,
            host: None,
        }
    }

    fn chain_report(step_ms: f64) -> BenchReport {
        let mut r = report(1e6);
        r.suite = "chain".to_string();
        r.cases.clear();
        r.chain = Some(crate::schema::ChainSection {
            cases: vec![crate::schema::ChainCaseReport {
                id: "harbor@tiny/galerkin/titan-xp".to_string(),
                dataset: "harbor".to_string(),
                workload: "galerkin".to_string(),
                steps: vec![
                    crate::schema::ChainStepReport {
                        label: "restrict".to_string(),
                        cache_hit: false,
                        fresh_structure: true,
                        method: "reorganized".to_string(),
                        total_ms: step_ms,
                        product_nnz: 900,
                        output_nnz: 900,
                        fill_in_permille: 1500,
                    },
                    crate::schema::ChainStepReport {
                        label: "restrict-refresh".to_string(),
                        cache_hit: true,
                        fresh_structure: false,
                        method: "reorganized".to_string(),
                        total_ms: step_ms / 2.0,
                        product_nnz: 900,
                        output_nnz: 900,
                        fill_in_permille: 1500,
                    },
                ],
                cache_hits: 1,
                cache_misses: 1,
                structure_churn: 1,
                total_ms: step_ms * 1.5,
                result_nnz: 900,
            }],
        });
        r
    }

    fn plan_report(ops: u64) -> BenchReport {
        let mut r = report(1e6);
        r.suite = "estplan".to_string();
        r.plan = Some(crate::schema::PlanSection {
            estimator_fingerprint: 0xabc,
            cases: vec![crate::schema::PlanCaseReport {
                id: "harbor@tiny/plan-estimate/titan-xp".to_string(),
                mode: "estimate".to_string(),
                method: "reorganized".to_string(),
                ops,
                sampled_cols: 64,
                rel_band_ppm: 90_000,
            }],
        });
        r
    }

    #[test]
    fn identical_reports_pass() {
        let cmp = compare(&report(1e6), &report(1e6), &Thresholds::default());
        assert!(!cmp.has_regressions(), "{}", cmp.render());
        assert!(cmp.notable().is_empty());
    }

    #[test]
    fn host_only_differences_compare_clean() {
        // The host section is wall clock: a current report carrying one
        // (or a wildly different one) against a host-less baseline must
        // produce zero rows of difference and no errors.
        let base = report(1e6);
        let mut cur = report(1e6);
        cur.host = Some(crate::schema::HostSection {
            threads: 8,
            wall_ms: 99999.0,
            cases_per_sec: 0.01,
            jobs_per_sec: 0.02,
            bins: Some(crate::schema::BinHostStats {
                tiny_max: 16,
                heavy_min: 2048,
                tiny_rows: 1,
                medium_rows: 2,
                heavy_rows: 3,
                tiny_products: 4,
                medium_products: 5,
                heavy_products: 6,
                kway_min: Some(512),
                kway_rows: Some(7),
                kway_products: Some(8),
                runs_per_row: Some(vec![0, 1, 6]),
            }),
            obs: Some(crate::schema::ObsHostStats {
                families: 9,
                samples: 33,
                span_events: 128,
            }),
        });
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert!(!cmp.has_regressions(), "{}", cmp.render());
        assert!(cmp.notable().is_empty());
        assert!(
            cmp.rows.iter().all(|r| !r.label.contains("host")),
            "host metrics must never be compared"
        );
        // The render does surface host throughput — as an informational
        // line, not a compared row.
        let rendered = cmp.render();
        assert!(rendered.contains("not gated"), "{rendered}");
        assert!(rendered.contains("99999 ms"), "{rendered}");
    }

    #[test]
    fn host_info_absent_when_neither_report_recorded_it() {
        let cmp = compare(&report(1e6), &report(1e6), &Thresholds::default());
        assert!(cmp.host_info.is_none());
        assert!(!cmp.render().contains("host throughput"));
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let cmp = compare(&report(1e6), &report(1.04e6), &Thresholds::default());
        assert!(!cmp.has_regressions(), "{}", cmp.render());
    }

    #[test]
    fn cycle_regression_beyond_threshold_fails() {
        let cmp = compare(&report(1e6), &report(1.06e6), &Thresholds::default());
        assert!(cmp.has_regressions());
        let rendered = cmp.render();
        assert!(rendered.contains("REGRESSED"), "{rendered}");
        assert!(rendered.contains("makespan_cycles"), "{rendered}");
    }

    #[test]
    fn speedup_is_reported_as_improvement_not_failure() {
        let cmp = compare(&report(1e6), &report(0.9e6), &Thresholds::default());
        assert!(!cmp.has_regressions(), "{}", cmp.render());
        assert!(cmp.notable().iter().any(|r| r.verdict == Verdict::Improved));
    }

    #[test]
    fn workload_identity_change_is_an_error() {
        let base = report(1e6);
        let mut cur = report(1e6);
        cur.cases[0].metrics.flops = 1001;
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert!(cmp.has_regressions());
        assert!(
            cmp.errors[0].contains("workload identity"),
            "{:?}",
            cmp.errors
        );
    }

    #[test]
    fn missing_case_and_model_skew_are_errors() {
        let base = report(1e6);
        let mut cur = report(1e6);
        cur.cases.clear();
        cur.model_version = 2;
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert!(cmp.has_regressions());
        assert!(cmp.errors.iter().any(|e| e.contains("missing")));
        assert!(cmp.errors.iter().any(|e| e.contains("model version")));
    }

    #[test]
    fn new_case_in_current_is_informational() {
        let base = report(1e6);
        let mut cur = report(1e6);
        cur.cases.push(CaseReport {
            id: "extra@tiny/MKL/titan-xp".to_string(),
            dataset: "extra".to_string(),
            scale: "tiny".to_string(),
            method: "MKL".to_string(),
            device: "NVIDIA TITAN Xp".to_string(),
            device_fingerprint: 3,
            metrics: metrics(5e5),
        });
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert!(!cmp.has_regressions(), "{}", cmp.render());
        assert!(cmp.rows.iter().any(|r| r.label.contains("new case")));
    }

    #[test]
    fn plan_ops_within_tolerance_passes_and_regression_fails() {
        // 8% growth sits inside the default 10% plan gate.
        let cmp = compare(
            &plan_report(1000),
            &plan_report(1080),
            &Thresholds::default(),
        );
        assert!(!cmp.has_regressions(), "{}", cmp.render());
        // 12% growth fails it.
        let cmp = compare(
            &plan_report(1000),
            &plan_report(1120),
            &Thresholds::default(),
        );
        assert!(cmp.has_regressions());
        let rendered = cmp.render();
        assert!(rendered.contains("plan_ops"), "{rendered}");
        // And the threshold is adjustable.
        let wide = Thresholds {
            plan_ops_pct: 20.0,
            ..Thresholds::default()
        };
        assert!(!compare(&plan_report(1000), &plan_report(1120), &wide).has_regressions());
    }

    #[test]
    fn changed_planning_decision_is_an_error() {
        let base = plan_report(1000);
        let mut cur = plan_report(1000);
        cur.plan.as_mut().unwrap().cases[0].method = "row-product".to_string();
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert!(cmp.has_regressions());
        assert!(
            cmp.errors.iter().any(|e| e.contains("planning decision")),
            "{:?}",
            cmp.errors
        );
        // Estimator fingerprint skew is an identity error too.
        let mut cur = plan_report(1000);
        cur.plan.as_mut().unwrap().estimator_fingerprint = 0xdef;
        assert!(compare(&base, &cur, &Thresholds::default())
            .errors
            .iter()
            .any(|e| e.contains("estimator config fingerprint")));
    }

    #[test]
    fn plan_section_presence_mismatches() {
        // Baseline gated a plan section; current dropped it: error.
        let base = plan_report(1000);
        let mut cur = plan_report(1000);
        cur.plan = None;
        let cmp = compare(&base, &cur, &Thresholds::default());
        // The message must name the suite so a multi-suite gate log says
        // which report dropped its plan section.
        assert!(cmp
            .errors
            .iter()
            .any(|e| e.contains("plan section missing") && e.contains("estplan")));
        // New plan section against a pre-estimator baseline: informational.
        let mut base = plan_report(1000);
        base.plan = None;
        let cmp = compare(&base, &plan_report(1000), &Thresholds::default());
        assert!(!cmp.has_regressions(), "{}", cmp.render());
    }

    #[test]
    fn null_plan_section_parsed_from_json_is_named_by_suite() {
        // A current report whose JSON carries an explicit `"plan": null`
        // (the layout every non-estplan suite writes) must compare like a
        // missing section, with the error naming the suite.
        let base = plan_report(1000);
        let mut cur = plan_report(1000);
        cur.plan = None;
        let text = cur.to_json();
        assert!(text.contains("\"plan\": null"), "fixture writes the key");
        let parsed = BenchReport::from_json(&text).expect("null plan parses");
        assert_eq!(parsed.plan, None);
        let cmp = compare(&base, &parsed, &Thresholds::default());
        assert!(
            cmp.errors
                .iter()
                .any(|e| e.contains("plan section missing") && e.contains("estplan")),
            "{:?}",
            cmp.errors
        );
    }

    #[test]
    fn chain_timings_gate_and_pattern_changes_are_errors() {
        // Within tolerance passes; the summary reports per-suite case
        // totals (satellite: cases compared/regressed, not just metrics).
        let cmp = compare(
            &chain_report(1.0),
            &chain_report(1.04),
            &Thresholds::default(),
        );
        assert!(!cmp.has_regressions(), "{}", cmp.render());
        let rendered = cmp.render();
        assert!(
            rendered.contains("chain: 1 cases compared (0 regressed)"),
            "{rendered}"
        );
        // A slow step regresses the case and the per-suite tally says so.
        let cmp = compare(
            &chain_report(1.0),
            &chain_report(1.1),
            &Thresholds::default(),
        );
        assert!(cmp.has_regressions());
        let rendered = cmp.render();
        assert!(rendered.contains("chain_total_ms"), "{rendered}");
        assert!(rendered.contains("step0:restrict"), "{rendered}");
        assert!(
            rendered.contains("chain: 1 cases compared (1 regressed)"),
            "{rendered}"
        );
        // A different hit/miss pattern is an identity error, not a delta.
        let base = chain_report(1.0);
        let mut cur = chain_report(1.0);
        cur.chain.as_mut().unwrap().cases[0].steps[1].cache_hit = false;
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert!(
            cmp.errors
                .iter()
                .any(|e| e.contains("per-step plan behaviour changed")),
            "{:?}",
            cmp.errors
        );
        // So is a changed final result.
        let mut cur = chain_report(1.0);
        cur.chain.as_mut().unwrap().cases[0].result_nnz = 901;
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert!(
            cmp.errors.iter().any(|e| e.contains("result changed")),
            "{:?}",
            cmp.errors
        );
    }

    #[test]
    fn chain_section_presence_mismatches() {
        // Baseline gated a chain section; current dropped it: error.
        let base = chain_report(1.0);
        let mut cur = chain_report(1.0);
        cur.chain = None;
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert!(
            cmp.errors
                .iter()
                .any(|e| e.contains("chain section missing") && e.contains("chain")),
            "{:?}",
            cmp.errors
        );
        // New chain section against a pre-chain baseline: informational.
        let mut base = chain_report(1.0);
        base.chain = None;
        let cmp = compare(&base, &chain_report(1.0), &Thresholds::default());
        assert!(!cmp.has_regressions(), "{}", cmp.render());
    }

    #[test]
    fn summary_line_reports_per_suite_case_totals() {
        let cmp = compare(&report(1e6), &report(1.06e6), &Thresholds::default());
        let rendered = cmp.render();
        assert_eq!(cmp.cases_compared, 1);
        assert_eq!(cmp.cases_regressed, 1);
        assert!(
            rendered.contains("quick: 1 cases compared (1 regressed)"),
            "{rendered}"
        );
    }

    #[test]
    fn zero_baseline_does_not_divide_by_zero() {
        let mut base = report(1e6);
        base.cases[0].metrics.lbi = 0.0;
        let mut cur = report(1e6);
        cur.cases[0].metrics.lbi = 2.0;
        let cmp = compare(&base, &cur, &Thresholds::default());
        assert!(cmp.has_regressions(), "{}", cmp.render());
    }
}
